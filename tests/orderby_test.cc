// ORDER BY + index-range-scan tests: the interesting-orders machinery
// end-to-end (range scans emit B-tree key order; merge joins emit their
// outer join column; the optimizer exploits either before resorting to an
// explicit Sort).

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() : pool_(&disk_, 256), catalog_(&pool_) {
    auto table = catalog_.CreateTable(
        "t", {{"key", TypeId::kInt64},
              {"grp", TypeId::kInt64},
              {"val", TypeId::kInt64}});
    EXPECT_TRUE(table.ok());
    common::Random rng(3);
    for (int64_t i = 0; i < 20000; ++i) {
      // Insert keys shuffled so heap order != key order.
      EXPECT_TRUE(
          (*table)
              ->Insert(Tuple({Value((i * 377) % 20000), Value(i % 10),
                              Value(static_cast<int64_t>(
                                  rng.NextUint64(1000)))}))
              .ok());
    }
    EXPECT_TRUE((*table)->CreateIndex("key").ok());
    EXPECT_TRUE((*table)->Analyze().ok());

    auto other = catalog_.CreateTable(
        "u", {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    EXPECT_TRUE(other.ok());
    for (int64_t i = 0; i < 200; ++i) {
      EXPECT_TRUE((*other)->Insert(Tuple({Value(i), Value(i % 10)})).ok());
    }
    EXPECT_TRUE((*other)->CreateIndex("key").ok());
    EXPECT_TRUE((*other)->Analyze().ok());
  }

  std::vector<Tuple> Run(const std::string& sql, std::string* plan_text) {
    auto spec = parser::ParseAndBind(sql, catalog_);
    EXPECT_TRUE(spec.ok()) << spec.status();
    optimizer::Optimizer opt(&catalog_, {});
    auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << result.status();
    if (plan_text != nullptr) *plan_text = result->plan->ToString();

    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    for (const plan::TableRef& ref : spec->tables) {
      ctx.binding[ref.alias] = *catalog_.GetTable(ref.table_name);
    }
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return std::move(rows).value();
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(OrderByTest, ParserAcceptsOrderBy) {
  auto parsed = parser::ParseSelect("SELECT * FROM t ORDER BY key");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_NE(parsed->order_by, nullptr);
  EXPECT_EQ(parsed->order_by->column, "key");
  EXPECT_TRUE(parser::ParseSelect("SELECT * FROM t ORDER BY t.key ASC").ok());
  EXPECT_FALSE(parser::ParseSelect("SELECT * FROM t ORDER BY 1 + 2").ok());
  EXPECT_FALSE(parser::ParseSelect("SELECT * FROM t ORDER key").ok());
}

TEST_F(OrderByTest, BinderQualifiesOrderColumn) {
  auto spec = parser::ParseAndBind("SELECT * FROM t ORDER BY key", catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->order_by, "t.key");
}

TEST_F(OrderByTest, OutputIsSorted) {
  const std::vector<Tuple> rows =
      Run("SELECT * FROM t WHERE t.grp = 3 ORDER BY t.key", nullptr);
  ASSERT_EQ(rows.size(), 2000u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].Get(0).AsInt64(), rows[i].Get(0).AsInt64());
  }
}

TEST_F(OrderByTest, RangeScanSatisfiesOrderWithoutSort) {
  std::string plan;
  const std::vector<Tuple> rows =
      Run("SELECT * FROM t WHERE t.key < 100 ORDER BY t.key", &plan);
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].Get(0).AsInt64(), rows[i].Get(0).AsInt64());
  }
  // The B-tree range scan provides the order: no Sort node needed.
  EXPECT_EQ(plan.find("Sort("), std::string::npos) << plan;
  EXPECT_NE(plan.find("IndexRangeScan"), std::string::npos) << plan;
}

TEST_F(OrderByTest, SortInsertedWhenNoOrderedPathExists) {
  std::string plan;
  const std::vector<Tuple> rows =
      Run("SELECT * FROM t ORDER BY t.val", &plan);
  ASSERT_EQ(rows.size(), 20000u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].Get(2).AsInt64(), rows[i].Get(2).AsInt64());
  }
  EXPECT_NE(plan.find("Sort(t.val)"), std::string::npos) << plan;
}

TEST_F(OrderByTest, RangeScanBoundsAreExact) {
  std::string plan;
  // Half-open predicates of every flavour, with constants on either side.
  struct Case {
    const char* sql;
    int64_t expected;
  };
  const Case cases[] = {
      {"SELECT * FROM t WHERE t.key < 10", 10},
      {"SELECT * FROM t WHERE t.key <= 10", 11},
      {"SELECT * FROM t WHERE t.key > 19989", 10},
      {"SELECT * FROM t WHERE t.key >= 19989", 11},
      {"SELECT * FROM t WHERE 10 > t.key", 10},
      {"SELECT * FROM t WHERE 19989 <= t.key", 11},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(Run(c.sql, &plan).size(), static_cast<size_t>(c.expected))
        << c.sql << "\n" << plan;
  }
}

TEST_F(OrderByTest, JoinQueryHonoursOrderBy) {
  const std::vector<Tuple> rows = Run(
      "SELECT * FROM t, u WHERE t.key = u.key ORDER BY u.key", nullptr);
  ASSERT_EQ(rows.size(), 200u);
  // u.key is the 4th output column only if u is on a particular side;
  // find it via value pattern instead: every row's t.key == u.key, so
  // checking the first column's order when equal works for either layout.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].Get(0).AsInt64(), rows[i].Get(0).AsInt64());
  }
}

TEST_F(OrderByTest, OrderByUnknownColumnFails) {
  EXPECT_FALSE(
      parser::ParseAndBind("SELECT * FROM t ORDER BY nope", catalog_).ok());
}

}  // namespace
}  // namespace ppp
