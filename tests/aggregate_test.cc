// Aggregate (COUNT/SUM/AVG/MIN/MAX, GROUP BY) tests, including the
// interaction with expensive predicates: "how many tuples pass the costly
// filter per group" is the natural reporting query over this engine.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : pool_(&disk_, 128), catalog_(&pool_) {
    // 100 rows: grp = i % 4, val = i.
    auto table = catalog_.CreateTable(
        "t", {{"grp", TypeId::kInt64}, {"val", TypeId::kInt64}});
    EXPECT_TRUE(table.ok());
    for (int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE((*table)->Insert(Tuple({Value(i % 4), Value(i)})).ok());
    }
    EXPECT_TRUE((*table)->Analyze().ok());
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("pricey", 10, 0.5)
            .ok());
    // A table with NULL values for null-handling tests.
    auto nullable = catalog_.CreateTable(
        "n", {{"grp", TypeId::kInt64}, {"val", TypeId::kInt64}});
    EXPECT_TRUE(nullable.ok());
    for (int64_t i = 0; i < 10; ++i) {
      EXPECT_TRUE((*nullable)
                      ->Insert(Tuple({Value(i % 2),
                                      i < 4 ? Value() : Value(i)}))
                      .ok());
    }
    EXPECT_TRUE((*nullable)->Analyze().ok());
  }

  std::vector<Tuple> Run(const std::string& sql) {
    auto spec = parser::ParseAndBind(sql, catalog_);
    EXPECT_TRUE(spec.ok()) << spec.status();
    if (!spec.ok()) return {};
    optimizer::Optimizer opt(&catalog_, {});
    auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) return {};
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    for (const plan::TableRef& ref : spec->tables) {
      ctx.binding[ref.alias] = *catalog_.GetTable(ref.table_name);
    }
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return rows.ok() ? std::move(rows).value() : std::vector<Tuple>{};
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(AggregateTest, GlobalCountStar) {
  const std::vector<Tuple> rows = Run("SELECT count(*) FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 100);
}

TEST_F(AggregateTest, GlobalSumAvgMinMax) {
  const std::vector<Tuple> rows = Run(
      "SELECT sum(t.val), avg(t.val), min(t.val), max(t.val) FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].Get(0).AsDouble(), 4950);
  EXPECT_DOUBLE_EQ(rows[0].Get(1).AsDouble(), 49.5);
  EXPECT_EQ(rows[0].Get(2).AsInt64(), 0);
  EXPECT_EQ(rows[0].Get(3).AsInt64(), 99);
}

TEST_F(AggregateTest, GroupByCounts) {
  const std::vector<Tuple> rows =
      Run("SELECT t.grp, count(*) FROM t GROUP BY t.grp");
  ASSERT_EQ(rows.size(), 4u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get(1).AsInt64(), 25);
  }
}

TEST_F(AggregateTest, GroupBySums) {
  const std::vector<Tuple> rows =
      Run("SELECT t.grp, sum(t.val) FROM t GROUP BY t.grp ");
  ASSERT_EQ(rows.size(), 4u);
  double total = 0;
  for (const Tuple& row : rows) total += row.Get(1).AsDouble();
  EXPECT_DOUBLE_EQ(total, 4950);
}

TEST_F(AggregateTest, WhereAppliesBeforeAggregation) {
  const std::vector<Tuple> rows =
      Run("SELECT count(*) FROM t WHERE t.val < 10");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 10);
}

TEST_F(AggregateTest, ExpensivePredicateUnderAggregate) {
  const std::vector<Tuple> rows =
      Run("SELECT t.grp, count(*) FROM t WHERE pricey(t.val) GROUP BY "
          "t.grp");
  // pricey has true selectivity ~0.5: counts must sum to the number of
  // passing rows, and every group row must be 0 < n <= 25.
  int64_t total = 0;
  for (const Tuple& row : rows) {
    EXPECT_LE(row.Get(1).AsInt64(), 25);
    total += row.Get(1).AsInt64();
  }
  EXPECT_GT(total, 20);
  EXPECT_LT(total, 80);
}

TEST_F(AggregateTest, CountExprSkipsNulls) {
  const std::vector<Tuple> rows =
      Run("SELECT count(n.val), count(*) FROM n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 6);   // 4 NULLs skipped.
  EXPECT_EQ(rows[0].Get(1).AsInt64(), 10);  // COUNT(*) counts rows.
}

TEST_F(AggregateTest, MinMaxIgnoreNulls) {
  const std::vector<Tuple> rows =
      Run("SELECT min(n.val), max(n.val) FROM n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 4);
  EXPECT_EQ(rows[0].Get(1).AsInt64(), 9);
}

TEST_F(AggregateTest, EmptyInputGlobalAggregate) {
  const std::vector<Tuple> rows =
      Run("SELECT count(*), sum(t.val) FROM t WHERE t.val < 0");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 0);
  EXPECT_TRUE(rows[0].Get(1).is_null());  // SUM of nothing is NULL.
}

TEST_F(AggregateTest, EmptyInputGroupedAggregateHasNoRows) {
  const std::vector<Tuple> rows = Run(
      "SELECT t.grp, count(*) FROM t WHERE t.val < 0 GROUP BY t.grp");
  EXPECT_TRUE(rows.empty());
}

TEST_F(AggregateTest, AggregateOverJoin) {
  const std::vector<Tuple> rows = Run(
      "SELECT a.grp, count(*) FROM t a, t b WHERE a.val = b.val "
      "GROUP BY a.grp");
  ASSERT_EQ(rows.size(), 4u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get(1).AsInt64(), 25);  // Self-join on unique val.
  }
}

TEST_F(AggregateTest, SelectItemNotInGroupByFails) {
  auto spec = parser::ParseAndBind(
      "SELECT t.val, count(*) FROM t GROUP BY t.grp", catalog_);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog_, {});
  EXPECT_FALSE(opt.Optimize(*spec, optimizer::Algorithm::kPushDown).ok());
}

TEST_F(AggregateTest, AggregateInWhereRejected) {
  EXPECT_FALSE(parser::ParseAndBind(
                   "SELECT count(*) FROM t WHERE sum(t.val) > 10", catalog_)
                   .ok());
}

TEST_F(AggregateTest, SelectStarWithGroupByRejected) {
  auto spec =
      parser::ParseAndBind("SELECT * FROM t GROUP BY t.grp", catalog_);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog_, {});
  EXPECT_FALSE(opt.Optimize(*spec, optimizer::Algorithm::kPushDown).ok());
}

TEST_F(AggregateTest, CaseInsensitiveAggregateNames) {
  const std::vector<Tuple> rows = Run("SELECT COUNT(*), SUM(t.val) FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 100);
}


TEST_F(AggregateTest, HavingFiltersGroups) {
  const std::vector<Tuple> rows = Run(
      "SELECT t.grp, count(*) FROM t WHERE t.val < 42 GROUP BY t.grp "
      "HAVING count(*) > 10");
  // vals 0..41: groups 0,1 have 11 members; groups 2,3 have 10.
  ASSERT_EQ(rows.size(), 2u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get(1).AsInt64(), 11);
  }
}

TEST_F(AggregateTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate (sum) is not in the select list.
  const std::vector<Tuple> rows = Run(
      "SELECT t.grp FROM t GROUP BY t.grp HAVING sum(t.val) > 1237");
  // Per-group sums: grp g has sum 25*g + 4*(0+4+...+96)=1200+25g.
  // Sums: 1200, 1225, 1250, 1275 -> groups 2 and 3 pass.
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(AggregateTest, HavingWithoutGroupingRejected) {
  auto spec = parser::ParseAndBind(
      "SELECT t.val FROM t HAVING t.val > 1", catalog_);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog_, {});
  EXPECT_FALSE(opt.Optimize(*spec, optimizer::Algorithm::kPushDown).ok());
}

TEST_F(AggregateTest, DistinctDeduplicates) {
  const std::vector<Tuple> rows = Run("SELECT DISTINCT t.grp FROM t");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(AggregateTest, DistinctOnMultipleColumns) {
  const std::vector<Tuple> rows =
      Run("SELECT DISTINCT t.grp, t.val FROM t WHERE t.val < 8");
  EXPECT_EQ(rows.size(), 8u);  // val unique: no dedup effect.
}

TEST_F(AggregateTest, DistinctStarRejected) {
  auto spec = parser::ParseAndBind("SELECT DISTINCT * FROM t", catalog_);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog_, {});
  EXPECT_FALSE(opt.Optimize(*spec, optimizer::Algorithm::kPushDown).ok());
}

}  // namespace
}  // namespace ppp
