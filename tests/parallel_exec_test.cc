// Parallel-execution correctness: the batched executor with the parallel
// expensive-predicate evaluator must be a pure latency optimization. The
// paper's currency is invocation counts × declared cost (§2), so for any
// worker count and batch size the executed plan must produce the same
// result multiset AND the same per-function invocation counters as the
// serial run — parallelism may overlap waits, never change the bill.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using optimizer::Algorithm;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  common::ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::atomic<int>> ran(100);
  for (auto& r : ran) r.store(0);
  pool.Run(100, [&](size_t i) { ran[i].fetch_add(1); });
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  common::ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.Run(8, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 36u);
  }
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(4);
  pool.Run(4, [&](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, CallerParticipates) {
  // With many more tasks than pool threads, the calling thread must claim
  // work too (effective parallelism = threads + 1).
  common::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> by_caller{0};
  pool.Run(64, [&](size_t) {
    if (std::this_thread::get_id() == caller) by_caller.fetch_add(1);
    std::this_thread::yield();
  });
  EXPECT_GT(by_caller.load(), 0);
}

/// One executed configuration of a benchmark query: canonical results plus
/// the invocation counters the paper bills from.
struct RunOutcome {
  std::vector<std::string> rows;
  std::map<std::string, uint64_t> invocations;

  bool operator==(const RunOutcome& other) const {
    return rows == other.rows && invocations == other.invocations;
  }
};

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() {
    config_.scale = 150;  // Small: every query runs many configurations.
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  /// Optimizes `id` once (fixed plan), then executes it under `params`.
  /// Keeping the plan fixed isolates the executor: any difference between
  /// configurations is an executor bug, not a placement change.
  RunOutcome Execute(const std::string& id, const exec::ExecParams& params) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    optimizer::Optimizer opt(&db_.catalog(), {});
    auto result = opt.Optimize(*spec, Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params = params;
    for (const plan::TableRef& ref : spec->tables) {
      ctx.binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    exec::ExecStats stats;
    types::RowSchema schema;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, &stats, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    RunOutcome out;
    out.rows = workload::CanonicalResults(*rows, schema);
    out.invocations = {stats.invocations.begin(), stats.invocations.end()};
    return out;
  }

  exec::ExecParams Params(size_t workers, size_t batch) {
    exec::ExecParams params;
    params.parallel_workers = workers;
    params.batch_size = batch;
    return params;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(ParallelExecTest, SerialBatchSizeNeverChangesAnything) {
  // Single-threaded, the batch pipeline must be bit-identical to the old
  // tuple-at-a-time executor regardless of batch size.
  for (const char* id : {"Q1", "Q3"}) {
    const RunOutcome reference = Execute(id, Params(1, 1024));
    EXPECT_FALSE(reference.rows.empty()) << id;
    for (const size_t batch : {size_t{1}, size_t{7}}) {
      EXPECT_EQ(Execute(id, Params(1, batch)), reference)
          << id << " batch=" << batch;
    }
  }
}

TEST_F(ParallelExecTest, ParallelMatchesSerialOnAllBenchmarkQueries) {
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    const RunOutcome serial = Execute(id, Params(1, 1024));
    EXPECT_EQ(Execute(id, Params(4, 1024)), serial) << id << " workers=4";
    EXPECT_EQ(Execute(id, Params(2, 7)), serial)
        << id << " workers=2 batch=7";
  }
}

TEST_F(ParallelExecTest, DegenerateBatchesStillCorrect) {
  // Batch of one tuple: every parallel fan-out degenerates to a single
  // slice; the plumbing (pending entries, per-worker contexts, merges)
  // must still add up exactly.
  const RunOutcome serial = Execute("Q1", Params(1, 1024));
  EXPECT_EQ(Execute("Q1", Params(4, 1)), serial);
}

TEST_F(ParallelExecTest, ParallelWithoutCachingMatchesSerial) {
  exec::ExecParams serial_params = Params(1, 1024);
  serial_params.predicate_caching = false;
  exec::ExecParams parallel_params = Params(4, 256);
  parallel_params.predicate_caching = false;
  EXPECT_EQ(Execute("Q1", parallel_params), Execute("Q1", serial_params));
}

}  // namespace
}  // namespace ppp
