#include <gtest/gtest.h>

#include "catalog/function_registry.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace ppp::expr {
namespace {

using types::RowSchema;
using types::Tuple;
using types::TypeId;
using types::Value;

TEST(ExprTest, ToStringForms) {
  EXPECT_EQ(Col("t", "c")->ToString(), "t.c");
  EXPECT_EQ(Col("", "c")->ToString(), "c");
  EXPECT_EQ(Int(5)->ToString(), "5");
  EXPECT_EQ(Eq(Col("t", "a"), Int(1))->ToString(), "t.a = 1");
  EXPECT_EQ(Call("f", {Col("t", "x"), Int(2)})->ToString(), "f(t.x, 2)");
  EXPECT_EQ(And(Eq(Col("a", "x"), Int(1)), Eq(Col("b", "y"), Int(2)))
                ->ToString(),
            "(a.x = 1 AND b.y = 2)");
  EXPECT_EQ(Not(Col("t", "flag"))->ToString(), "NOT (t.flag)");
  EXPECT_EQ(Arith(ArithOp::kMul, Int(2), Int(3))->ToString(), "(2 * 3)");
}

TEST(ExprTest, ReferencedTables) {
  ExprPtr e = And(Eq(Col("a", "x"), Col("b", "y")), Call("f", {Col("c", "z")}));
  const std::set<std::string> tables = e->ReferencedTables();
  EXPECT_EQ(tables, (std::set<std::string>{"a", "b", "c"}));
}

TEST(ExprTest, CollectFunctionCallsFindsNested) {
  ExprPtr e = Call("outer", {Call("inner", {Col("t", "x")})});
  std::vector<const Expr*> calls;
  e->CollectFunctionCalls(&calls);
  ASSERT_EQ(calls.size(), 2u);
}

TEST(ExprTest, SplitAndCombineConjuncts) {
  ExprPtr a = Eq(Col("t", "x"), Int(1));
  ExprPtr b = Eq(Col("t", "y"), Int(2));
  ExprPtr c = Eq(Col("t", "z"), Int(3));
  const std::vector<ExprPtr> split = SplitConjuncts(And(And(a, b), c));
  ASSERT_EQ(split.size(), 3u);
  EXPECT_TRUE(split[0]->Equals(*a));
  EXPECT_TRUE(split[2]->Equals(*c));

  // OR is not split.
  EXPECT_EQ(SplitConjuncts(Or(a, b)).size(), 1u);
  EXPECT_EQ(SplitConjuncts(nullptr).size(), 0u);

  ExprPtr combined = CombineConjuncts(split);
  EXPECT_EQ(SplitConjuncts(combined).size(), 3u);
}

TEST(ExprTest, EqualsIsStructural) {
  EXPECT_TRUE(Eq(Col("t", "a"), Int(1))->Equals(*Eq(Col("t", "a"), Int(1))));
  EXPECT_FALSE(Eq(Col("t", "a"), Int(1))->Equals(*Eq(Col("t", "a"), Int(2))));
  EXPECT_FALSE(Eq(Col("t", "a"), Int(1))
                   ->Equals(*Cmp(CompareOp::kLt, Col("t", "a"), Int(1))));
  EXPECT_FALSE(Col("t", "a")->Equals(*Col("u", "a")));
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest()
      : schema_({{"t", "a", TypeId::kInt64},
                 {"t", "b", TypeId::kInt64},
                 {"t", "s", TypeId::kString}}) {
    catalog::FunctionDef def;
    def.name = "is_even";
    def.cost_per_call = 1;
    def.selectivity = 0.5;
    def.impl = [](const std::vector<Value>& args) {
      if (args[0].is_null()) return Value();
      return Value(args[0].AsInt64() % 2 == 0);
    };
    EXPECT_TRUE(functions_.Register(std::move(def)).ok());
  }

  Value Eval(const ExprPtr& e, const Tuple& t) {
    auto bound = BoundExpr::Bind(e, schema_, functions_);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return (*bound)->Eval(t, &ctx_);
  }

  RowSchema schema_;
  catalog::FunctionRegistry functions_;
  EvalContext ctx_;
};

TEST_F(EvalTest, ColumnAndConstant) {
  Tuple t({Value(int64_t{7}), Value(int64_t{2}), Value("x")});
  EXPECT_EQ(Eval(Col("t", "a"), t).AsInt64(), 7);
  EXPECT_EQ(Eval(Int(3), t).AsInt64(), 3);
}

TEST_F(EvalTest, Comparisons) {
  Tuple t({Value(int64_t{7}), Value(int64_t{2}), Value("x")});
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGt, Col("t", "a"), Col("t", "b")), t)
                  .AsBool());
  EXPECT_FALSE(Eval(Eq(Col("t", "a"), Col("t", "b")), t).AsBool());
  EXPECT_TRUE(Eval(Cmp(CompareOp::kNe, Col("t", "a"), Col("t", "b")), t)
                  .AsBool());
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLe, Col("t", "b"), Int(2)), t).AsBool());
}

TEST_F(EvalTest, NullComparisonsAreNull) {
  Tuple t({Value(), Value(int64_t{2}), Value("x")});
  EXPECT_TRUE(Eval(Eq(Col("t", "a"), Int(1)), t).is_null());
}

TEST_F(EvalTest, ThreeValuedAndOr) {
  Tuple t({Value(), Value(int64_t{2}), Value("x")});
  ExprPtr null_cmp = Eq(Col("t", "a"), Int(1));       // NULL
  ExprPtr true_cmp = Eq(Col("t", "b"), Int(2));       // true
  ExprPtr false_cmp = Eq(Col("t", "b"), Int(3));      // false
  // false AND NULL = false; true AND NULL = NULL.
  EXPECT_FALSE(Eval(And(false_cmp, null_cmp), t).is_null());
  EXPECT_FALSE(Eval(And(false_cmp, null_cmp), t).AsBool());
  EXPECT_TRUE(Eval(And(true_cmp, null_cmp), t).is_null());
  // true OR NULL = true; false OR NULL = NULL.
  EXPECT_TRUE(Eval(Or(true_cmp, null_cmp), t).AsBool());
  EXPECT_TRUE(Eval(Or(false_cmp, null_cmp), t).is_null());
  // NOT NULL = NULL.
  EXPECT_TRUE(Eval(Not(null_cmp), t).is_null());
}

TEST_F(EvalTest, Arithmetic) {
  Tuple t({Value(int64_t{7}), Value(int64_t{2}), Value("x")});
  EXPECT_EQ(Eval(Arith(ArithOp::kAdd, Col("t", "a"), Col("t", "b")), t)
                .AsInt64(),
            9);
  EXPECT_EQ(Eval(Arith(ArithOp::kSub, Col("t", "a"), Int(10)), t).AsInt64(),
            -3);
  EXPECT_EQ(Eval(Arith(ArithOp::kMul, Col("t", "b"), Int(4)), t).AsInt64(), 8);
  EXPECT_DOUBLE_EQ(
      Eval(Arith(ArithOp::kDiv, Col("t", "a"), Col("t", "b")), t).AsDouble(),
      3.5);
  // Division by zero yields NULL, not a crash.
  EXPECT_TRUE(Eval(Arith(ArithOp::kDiv, Col("t", "a"), Int(0)), t).is_null());
}

TEST_F(EvalTest, FunctionCallCountsInvocations) {
  Tuple t({Value(int64_t{4}), Value(int64_t{2}), Value("x")});
  ExprPtr call = Call("is_even", {Col("t", "a")});
  EXPECT_TRUE(Eval(call, t).AsBool());
  EXPECT_TRUE(Eval(call, t).AsBool());
  EXPECT_EQ(ctx_.InvocationsOf("is_even"), 2u);
  EXPECT_EQ(ctx_.InvocationsOf("other"), 0u);
}

TEST_F(EvalTest, EvalBoolCollapsesNullToFalse) {
  Tuple t({Value(), Value(int64_t{2}), Value("x")});
  auto bound = BoundExpr::Bind(Eq(Col("t", "a"), Int(1)), schema_,
                               functions_);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE((*bound)->EvalBool(t, &ctx_));
}

TEST_F(EvalTest, BindFailsOnUnknownColumn) {
  EXPECT_FALSE(BoundExpr::Bind(Col("t", "nope"), schema_, functions_).ok());
  EXPECT_FALSE(BoundExpr::Bind(Col("u", "a"), schema_, functions_).ok());
}

TEST_F(EvalTest, BindFailsOnUnknownFunction) {
  EXPECT_FALSE(
      BoundExpr::Bind(Call("nope", {Col("t", "a")}), schema_, functions_)
          .ok());
}

TEST_F(EvalTest, ColumnIndexesCollectedDepthFirst) {
  auto bound = BoundExpr::Bind(
      And(Eq(Col("t", "b"), Int(1)), Call("is_even", {Col("t", "a")})),
      schema_, functions_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->column_indexes(), (std::vector<size_t>{1, 0}));
}

}  // namespace
}  // namespace ppp::expr
