// Columnar batch pipeline coverage: ColumnBatch storage and selection
// semantics, the vectorized comparison kernels pinned against the scalar
// evaluator (including NULL and NaN behaviour), the FilterOp cheap-prefix
// split's exact UDF invocation-counter parity, Bloom-transfer hash
// equivalence on the columnar probe path, and the Q1-Q5 end-to-end parity
// suite across vectorized {on,off} x workers {1,4} x transfer {on,off}.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "catalog/function_registry.h"
#include "exec/executor.h"
#include "exec/filter_op.h"
#include "exec/vector_filter.h"
#include "expr/evaluator.h"
#include "expr/predicate.h"
#include "optimizer/optimizer.h"
#include "plan/plan_node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "types/column_batch.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using exec::ExecParams;
using exec::ExecStats;
using exec::VectorizedPredicate;
using optimizer::Algorithm;
using expr::Call;
using expr::Cmp;
using expr::Col;
using expr::CompareOp;
using expr::Const;
using expr::Eq;
using expr::ExprPtr;
using expr::Int;
using types::ColumnBatch;
using types::ColumnInfo;
using types::RowSchema;
using types::Tuple;
using types::TypeId;
using types::Value;

// ---------------------------------------------------------------------------
// ColumnBatch storage semantics.
// ---------------------------------------------------------------------------

RowSchema FourColSchema() {
  return RowSchema({ColumnInfo{"t", "a", TypeId::kInt64},
                    ColumnInfo{"t", "x", TypeId::kDouble},
                    ColumnInfo{"t", "b", TypeId::kBool},
                    ColumnInfo{"t", "s", TypeId::kString}});
}

std::vector<Tuple> MixedRows() {
  return {
      Tuple({Value(int64_t{1}), Value(1.5), Value(true), Value("hello")}),
      Tuple({Value(), Value(), Value(), Value()}),
      Tuple({Value(int64_t{-7}), Value(-2.25), Value(false), Value("")}),
      Tuple({Value(int64_t{1} << 40), Value(0.0), Value(true),
             Value(std::string(300, 'z'))}),
  };
}

TEST(ColumnBatchTest, AppendSerializedRoundtrip) {
  ColumnBatch batch(FourColSchema());
  const std::vector<Tuple> rows = MixedRows();
  for (const Tuple& t : rows) {
    ASSERT_TRUE(batch.AppendSerialized(t.Serialize()).ok());
  }
  ASSERT_EQ(batch.num_rows(), rows.size());
  EXPECT_TRUE(batch.all_selected());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    EXPECT_FALSE(batch.column(c).boxed) << "column " << c;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch.RowAsTuple(i).Serialize(), rows[i].Serialize())
        << "row " << i;
  }
  // NULL placement agrees with the source tuples.
  EXPECT_FALSE(batch.IsNull(0, 0));
  EXPECT_TRUE(batch.IsNull(0, 1));
  EXPECT_TRUE(batch.IsNull(3, 1));
}

TEST(ColumnBatchTest, AppendTupleMatchesSerializedPath) {
  const std::vector<Tuple> rows = MixedRows();
  ColumnBatch from_bytes(FourColSchema());
  ColumnBatch from_tuples(FourColSchema());
  for (const Tuple& t : rows) {
    ASSERT_TRUE(from_bytes.AppendSerialized(t.Serialize()).ok());
    from_tuples.AppendTuple(t);
  }
  ASSERT_EQ(from_bytes.num_rows(), from_tuples.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(from_bytes.RowAsTuple(i).Serialize(),
              from_tuples.RowAsTuple(i).Serialize());
  }
}

TEST(ColumnBatchTest, TypeMismatchBoxesColumnAndKernelDeclines) {
  RowSchema schema({ColumnInfo{"t", "a", TypeId::kInt64}});
  ColumnBatch batch(schema);
  batch.AppendTuple(Tuple({Value(int64_t{3})}));
  EXPECT_FALSE(batch.column(0).boxed);
  // A string lands in a declared-int64 column: the whole column boxes and
  // earlier rows stay readable.
  batch.AppendTuple(Tuple({Value("oops")}));
  EXPECT_TRUE(batch.column(0).boxed);
  EXPECT_EQ(batch.GetValue(0, 0).AsInt64(), 3);
  EXPECT_EQ(batch.GetValue(0, 1).AsString(), "oops");

  auto kernel = VectorizedPredicate::Compile(
      Cmp(CompareOp::kLt, Col("t", "a"), Int(5)), schema);
  ASSERT_TRUE(kernel.has_value());
  EXPECT_FALSE(kernel->Applicable(batch));
}

TEST(ColumnBatchTest, ToTuplesAndCompactHonorSelection) {
  RowSchema schema({ColumnInfo{"t", "a", TypeId::kInt64},
                    ColumnInfo{"t", "s", TypeId::kString}});
  ColumnBatch batch(schema);
  for (int64_t i = 0; i < 8; ++i) {
    batch.AppendTuple(Tuple({Value(i), Value("str" + std::to_string(i))}));
  }
  *batch.mutable_selection() = {1, 3, 5};

  std::vector<Tuple> out;
  batch.ToTuples(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].Get(0).AsInt64(), 1);
  EXPECT_EQ(out[2].Get(1).AsString(), "str5");

  batch.Compact();
  EXPECT_EQ(batch.num_rows(), 3u);
  EXPECT_TRUE(batch.all_selected());
  // The string arena was rebuilt: positional access sees the survivors.
  EXPECT_EQ(batch.GetValue(0, 2).AsInt64(), 5);
  EXPECT_EQ(batch.GetValue(1, 1).AsString(), "str3");
}

TEST(ColumnBatchTest, ClearAndResetReuse) {
  RowSchema schema({ColumnInfo{"t", "a", TypeId::kInt64}});
  ColumnBatch batch(schema);
  batch.AppendTuple(Tuple({Value(int64_t{1})}));
  batch.Clear();
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_EQ(batch.selected(), 0u);
  batch.AppendTuple(Tuple({Value(int64_t{2})}));
  ASSERT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.GetValue(0, 0).AsInt64(), 2);

  // Reset with the same schema behaves like Clear; with a new schema it
  // adopts the new layout.
  batch.Reset(schema);
  EXPECT_EQ(batch.num_rows(), 0u);
  RowSchema other({ColumnInfo{"u", "x", TypeId::kDouble}});
  batch.Reset(other);
  EXPECT_EQ(batch.schema().Column(0).name, "x");
  batch.AppendTuple(Tuple({Value(3.5)}));
  EXPECT_DOUBLE_EQ(batch.GetValue(0, 0).AsDouble(), 3.5);
}

// ---------------------------------------------------------------------------
// Vectorized kernels pinned against the scalar evaluator.
// ---------------------------------------------------------------------------

/// Runs `e` both as a compiled kernel and through BoundExpr on every row,
/// in standalone mode (NULL drops) and prefix mode (NULL survives,
/// flagged), and requires identical survivor sets.
void CheckKernelAgainstScalar(const ExprPtr& e, const RowSchema& schema,
                              const std::vector<Tuple>& rows) {
  auto kernel = VectorizedPredicate::Compile(e, schema);
  ASSERT_TRUE(kernel.has_value());

  catalog::FunctionRegistry registry;
  auto bound = expr::BoundExpr::Bind(e, schema, registry);
  ASSERT_TRUE(bound.ok()) << bound.status();
  expr::EvalContext ectx;

  // Standalone: survivors are exactly the EvalBool-true rows.
  ColumnBatch batch(schema);
  for (const Tuple& t : rows) batch.AppendTuple(t);
  ASSERT_TRUE(kernel->Applicable(batch));
  kernel->Filter(&batch, nullptr);
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    if ((*bound)->EvalBool(rows[i], &ectx)) expect.push_back(i);
  }
  EXPECT_EQ(batch.selection(), expect);

  // Prefix mode: NULL-evaluating rows survive with their flag set.
  ColumnBatch prefix_batch(schema);
  for (const Tuple& t : rows) prefix_batch.AppendTuple(t);
  std::vector<uint8_t> maybe_null(rows.size(), 0);
  kernel->Filter(&prefix_batch, &maybe_null);
  std::vector<uint32_t> expect_sel;
  std::vector<uint8_t> expect_mn(rows.size(), 0);
  for (uint32_t i = 0; i < rows.size(); ++i) {
    const Value v = (*bound)->Eval(rows[i], &ectx);
    if (v.is_null()) {
      expect_sel.push_back(i);
      expect_mn[i] = 1;
    } else if (v.AsBool()) {
      expect_sel.push_back(i);
    }
  }
  EXPECT_EQ(prefix_batch.selection(), expect_sel);
  EXPECT_EQ(maybe_null, expect_mn);
}

class VectorKernelTest : public ::testing::Test {
 protected:
  VectorKernelTest()
      : schema_({ColumnInfo{"t", "a", TypeId::kInt64},
                 ColumnInfo{"t", "c", TypeId::kInt64},
                 ColumnInfo{"t", "x", TypeId::kDouble},
                 ColumnInfo{"t", "s", TypeId::kString},
                 ColumnInfo{"t", "s2", TypeId::kString}}) {
    auto row = [](Value a, Value c, Value x, Value s, Value s2) {
      return Tuple({std::move(a), std::move(c), std::move(x), std::move(s),
                    std::move(s2)});
    };
    const double nan = std::nan("");
    rows_ = {
        row(Value(int64_t{0}), Value(int64_t{0}), Value(0.0), Value("a"),
            Value("a")),
        row(Value(int64_t{5}), Value(int64_t{4}), Value(2.5), Value("mmm"),
            Value("mm")),
        row(Value(int64_t{-3}), Value(int64_t{7}), Value(-1.0), Value(""),
            Value("zzz")),
        row(Value(int64_t{5}), Value(int64_t{5}), Value(5.0), Value("mmm"),
            Value("mmm")),
        row(Value(), Value(int64_t{2}), Value(nan), Value(), Value("q")),
        row(Value(int64_t{9}), Value(), Value(nan), Value("zz"), Value()),
        row(Value(int64_t{1} << 40), Value(int64_t{5}), Value(2.5),
            Value("ab"), Value("ab")),
    };
  }

  RowSchema schema_;
  std::vector<Tuple> rows_;
};

TEST_F(VectorKernelTest, AllOpsMatchScalarEvaluator) {
  const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                            CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (CompareOp op : kOps) {
    SCOPED_TRACE(expr::CompareOpSymbol(op));
    // int64 column vs int64 constant, both operand orders.
    CheckKernelAgainstScalar(Cmp(op, Col("t", "a"), Int(5)), schema_, rows_);
    CheckKernelAgainstScalar(Cmp(op, Int(5), Col("t", "a")), schema_, rows_);
    // int64 column vs int64 column.
    CheckKernelAgainstScalar(Cmp(op, Col("t", "a"), Col("t", "c")), schema_,
                             rows_);
    // double column vs double constant (NaN rows included).
    CheckKernelAgainstScalar(Cmp(op, Col("t", "x"), Const(Value(2.5))),
                             schema_, rows_);
    // Mixed numeric: int64 column against a double constant and a double
    // column — forced through the double comparison path.
    CheckKernelAgainstScalar(Cmp(op, Col("t", "a"), Const(Value(2.5))),
                             schema_, rows_);
    CheckKernelAgainstScalar(Cmp(op, Col("t", "a"), Col("t", "x")), schema_,
                             rows_);
    // Strings: column vs constant and column vs column.
    CheckKernelAgainstScalar(Cmp(op, Col("t", "s"), Const(Value("mmm"))),
                             schema_, rows_);
    CheckKernelAgainstScalar(Cmp(op, Col("t", "s"), Col("t", "s2")), schema_,
                             rows_);
  }
}

TEST_F(VectorKernelTest, DeclinesNonVectorizableShapes) {
  // Function calls, boolean connectives, arithmetic, string-vs-number
  // operands, NULL literals and const-const comparisons all stay scalar.
  EXPECT_FALSE(VectorizedPredicate::Compile(Call("f", {Col("t", "a")}),
                                            schema_)
                   .has_value());
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   expr::Or(Eq(Col("t", "a"), Int(1)),
                            Eq(Col("t", "a"), Int(2))),
                   schema_)
                   .has_value());
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   Cmp(CompareOp::kLt,
                       expr::Arith(expr::ArithOp::kAdd, Col("t", "a"),
                                   Int(1)),
                       Int(5)),
                   schema_)
                   .has_value());
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   Cmp(CompareOp::kLt, Col("t", "s"), Int(5)), schema_)
                   .has_value());
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   Cmp(CompareOp::kLt, Col("t", "a"), Const(Value())),
                   schema_)
                   .has_value());
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   Cmp(CompareOp::kLt, Int(1), Int(2)), schema_)
                   .has_value());
  // Unknown column.
  EXPECT_FALSE(VectorizedPredicate::Compile(
                   Cmp(CompareOp::kLt, Col("t", "nope"), Int(5)), schema_)
                   .has_value());
}

TEST_F(VectorKernelTest, SelectionEdgeCases) {
  auto kernel = VectorizedPredicate::Compile(
      Cmp(CompareOp::kGe, Col("t", "a"), Int(0)), schema_);
  ASSERT_TRUE(kernel.has_value());

  // Empty batch.
  ColumnBatch empty(schema_);
  kernel->Filter(&empty, nullptr);
  EXPECT_EQ(empty.selected(), 0u);

  // All-pass and all-fail over non-null rows.
  ColumnBatch batch(schema_);
  for (const Tuple& t : rows_) {
    if (!t.Get(0).is_null()) batch.AppendTuple(t);
  }
  const size_t n = batch.num_rows();
  auto all_pass = VectorizedPredicate::Compile(
      Cmp(CompareOp::kGe, Col("t", "a"), Int(-100)), schema_);
  all_pass->Filter(&batch, nullptr);
  EXPECT_EQ(batch.selected(), n);
  auto all_fail = VectorizedPredicate::Compile(
      Cmp(CompareOp::kLt, Col("t", "a"), Int(-100)), schema_);
  all_fail->Filter(&batch, nullptr);
  EXPECT_EQ(batch.selected(), 0u);
}

// ---------------------------------------------------------------------------
// FilterOp split behaviour and execution parity.
// ---------------------------------------------------------------------------

std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.Serialize());
  std::sort(out.begin(), out.end());
  return out;
}

/// t: `rows` rows — key unique, a = key % 10 but NULL when key % 13 == 0,
/// x = key * 0.5, pad a short string. An expensive "costly" predicate is
/// registered (cost 100, selectivity 0.5).
class VectorExecTest : public ::testing::Test {
 protected:
  VectorExecTest() : pool_(&disk_, 128), catalog_(&pool_) {
    auto table = catalog_.CreateTable("t", {{"key", TypeId::kInt64},
                                            {"a", TypeId::kInt64},
                                            {"x", TypeId::kDouble},
                                            {"pad", TypeId::kString}});
    EXPECT_TRUE(table.ok());
    for (int64_t i = 0; i < 300; ++i) {
      Value a = (i % 13 == 0) ? Value() : Value(i % 10);
      EXPECT_TRUE((*table)
                      ->Insert(Tuple({Value(i), std::move(a), Value(i * 0.5),
                                      Value("p" + std::to_string(i))}))
                      .ok());
    }
    EXPECT_TRUE((*table)->Analyze().ok());
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.5)
            .ok());
    binding_ = {{"t", *catalog_.GetTable("t")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
  }

  expr::PredicateInfo Analyze(const ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  std::vector<Tuple> Run(const plan::PlanNode& plan, const ExecParams& params,
                         ExecStats* stats,
                         std::unique_ptr<exec::Operator>* root = nullptr) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.binding = binding_;
    ctx.params = params;
    auto rows = exec::ExecutePlan(plan, &ctx, stats, nullptr, root);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return std::move(rows).value();
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
};

TEST_F(VectorExecTest, SplitEngagesOnlyWhenSafe) {
  const ExprPtr cheap2 = expr::And(Cmp(CompareOp::kLt, Col("t", "a"), Int(5)),
                                   Cmp(CompareOp::kLt, Col("t", "key"),
                                       Int(200)));
  const ExprPtr mixed = expr::And(Cmp(CompareOp::kLt, Col("t", "a"), Int(5)),
                                  Call("costly", {Col("t", "key")}));

  // Cheap conjunction: fully vectorized, even with caching on (cheap
  // predicates never engage the memo).
  ExecParams caching_on;
  std::unique_ptr<exec::Operator> root;
  {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(cheap2));
    ExecStats stats;
    Run(*plan, caching_on, &stats, &root);
    auto* filter = dynamic_cast<exec::FilterOp*>(root.get());
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->vectorized_conjuncts(), 2u);
    EXPECT_TRUE(filter->provides_columns());
    EXPECT_NE(filter->Describe().find("vector"), std::string::npos);
  }

  // Mixed conjunction with the predicate cache engaged: never split (the
  // split would change cache keys and hit patterns).
  {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(mixed));
    ExecStats stats;
    Run(*plan, caching_on, &stats, &root);
    auto* filter = dynamic_cast<exec::FilterOp*>(root.get());
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->vectorized_conjuncts(), 0u);
  }

  // Mixed conjunction with caching off: cheap prefix splits off.
  ExecParams caching_off;
  caching_off.predicate_caching = false;
  {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(mixed));
    ExecStats stats;
    Run(*plan, caching_off, &stats, &root);
    auto* filter = dynamic_cast<exec::FilterOp*>(root.get());
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->vectorized_conjuncts(), 1u);
  }

  // Expensive-first conjunction: the maximal cheap *prefix* is empty, so
  // nothing vectorizes (reordering would change invocation counts).
  const ExprPtr udf_first =
      expr::And(Call("costly", {Col("t", "key")}),
                Cmp(CompareOp::kLt, Col("t", "a"), Int(5)));
  {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(udf_first));
    ExecStats stats;
    Run(*plan, caching_off, &stats, &root);
    auto* filter = dynamic_cast<exec::FilterOp*>(root.get());
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->vectorized_conjuncts(), 0u);
  }

  // Vectorized off: row pipeline everywhere.
  ExecParams off;
  off.vectorized = false;
  {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(cheap2));
    ExecStats stats;
    Run(*plan, off, &stats, &root);
    auto* filter = dynamic_cast<exec::FilterOp*>(root.get());
    ASSERT_NE(filter, nullptr);
    EXPECT_EQ(filter->vectorized_conjuncts(), 0u);
    EXPECT_FALSE(filter->provides_columns());
  }
}

TEST_F(VectorExecTest, CheapPredicateParityWithNulls) {
  // a has NULLs (key % 13 == 0): NULL rows must not pass, matching
  // EvalBool. x < 20 exercises the double path.
  const ExprPtr preds[] = {
      Cmp(CompareOp::kLt, Col("t", "a"), Int(5)),
      Cmp(CompareOp::kLt, Col("t", "x"), Const(Value(20.0))),
      Cmp(CompareOp::kGe, Col("t", "key"), Int(0)),   // all-pass
      Cmp(CompareOp::kLt, Col("t", "key"), Int(-1)),  // all-fail
  };
  for (const ExprPtr& e : preds) {
    plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                          Analyze(e));
    ExecParams on;
    ExecParams off;
    off.vectorized = false;
    ExecStats s_on, s_off;
    const auto rows_on = Run(*plan, on, &s_on);
    const auto rows_off = Run(*plan, off, &s_off);
    EXPECT_EQ(Canon(rows_on), Canon(rows_off));
  }

  // Empty upstream batches: an all-fail filter below a vectorizable filter.
  plan::PlanPtr empty_chain = plan::MakeFilter(
      plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                       Analyze(Cmp(CompareOp::kLt, Col("t", "key"), Int(-1)))),
      Analyze(Cmp(CompareOp::kLt, Col("t", "a"), Int(5))));
  ExecStats stats;
  EXPECT_TRUE(Run(*empty_chain, ExecParams{}, &stats).empty());
}

TEST_F(VectorExecTest, MixedSplitKeepsExactInvocationCounts) {
  // Cheap prefix + expensive suffix, with NULLs in the cheap column: rows
  // whose cheap conjunct evaluates NULL must still invoke the UDF (SQL AND
  // does not short-circuit on NULL) yet never reach the output.
  const ExprPtr mixed = expr::And(Cmp(CompareOp::kLt, Col("t", "a"), Int(5)),
                                  Call("costly", {Col("t", "key")}));
  plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                        Analyze(mixed));
  for (size_t workers : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExecParams off;
    off.predicate_caching = false;
    off.vectorized = false;
    off.parallel_workers = workers;
    ExecParams on = off;
    on.vectorized = true;

    ExecStats s_off, s_on;
    const auto rows_off = Run(*plan, off, &s_off);
    const auto rows_on = Run(*plan, on, &s_on);

    EXPECT_EQ(Canon(rows_on), Canon(rows_off));
    ASSERT_TRUE(s_off.invocations.count("costly"));
    EXPECT_EQ(s_on.invocations, s_off.invocations);
    // The prefix actually pruned: fewer invocations than input rows, but
    // NULL-a rows (key % 13 == 0) still reached the UDF.
    const uint64_t calls = s_off.invocations.at("costly");
    EXPECT_LT(calls, 300u);
    EXPECT_GE(calls, 150u);  // ~5/10 pass + 24 NULL rows.
  }
}

TEST_F(VectorExecTest, CachedPredicateParity) {
  // With the memo engaged the conjunction is never split — results and
  // cache-bounded invocation counts still match the row engine exactly.
  const ExprPtr mixed = expr::And(Cmp(CompareOp::kLt, Col("t", "a"), Int(5)),
                                  Call("costly", {Col("t", "a")}));
  plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("t", "t"),
                                        Analyze(mixed));
  ExecParams on;
  ExecParams off;
  off.vectorized = false;
  ExecStats s_on, s_off;
  const auto rows_on = Run(*plan, on, &s_on);
  const auto rows_off = Run(*plan, off, &s_off);
  EXPECT_EQ(Canon(rows_on), Canon(rows_off));
  EXPECT_EQ(s_on.invocations, s_off.invocations);
}

TEST_F(VectorExecTest, BatchSizeZeroIsClamped) {
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("t", "t"),
      Analyze(Cmp(CompareOp::kLt, Col("t", "a"), Int(5))));
  ExecParams params;
  params.batch_size = 0;
  ExecStats stats;
  ExecParams sane;
  ExecStats sane_stats;
  EXPECT_EQ(Canon(Run(*plan, params, &stats)),
            Canon(Run(*plan, sane, &sane_stats)));
}

// ---------------------------------------------------------------------------
// Bloom-transfer hash parity on the columnar probe path.
// ---------------------------------------------------------------------------

/// The columnar probe path hashes native column cells (HashColumnCell)
/// while the build side hashed Values — any divergence falsely prunes
/// probe rows (Bloom filters must never have false negatives). Keys
/// include int64s that are not exactly representable as doubles, the case
/// where Value::Hash switches hash functions.
TEST(VectorTransferTest, ColumnarProbeHashMatchesValueHash) {
  storage::DiskManager disk;
  storage::BufferPool pool(&disk, 64);
  catalog::Catalog catalog(&pool);
  const int64_t base = (int64_t{1} << 62) + 1;  // Not double-representable.
  auto make = [&](const std::string& name, int64_t rows, int64_t stride) {
    auto table = catalog.CreateTable(
        name, {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)
              ->Insert(Tuple({Value(base + i * stride), Value(i % 7)}))
              .ok());
    }
    ASSERT_TRUE((*table)->Analyze().ok());
  };
  make("r", 128, 1);  // Probe side: keys base..base+127.
  make("s", 16, 8);   // Build side: every 8th key.
  expr::TableBinding binding = {{"r", *catalog.GetTable("r")},
                                {"s", *catalog.GetTable("s")}};
  expr::PredicateAnalyzer analyzer(&catalog, binding);

  // Cheap filter above the probe scan pulls columns, so TransferProbe
  // narrows the selection vector via the columnar hash path.
  auto grp_pred = analyzer.Analyze(
      Cmp(CompareOp::kGe, Col("r", "grp"), Int(0)));
  ASSERT_TRUE(grp_pred.ok());
  auto join_pred = analyzer.Analyze(Eq(Col("r", "key"), Col("s", "key")));
  ASSERT_TRUE(join_pred.ok());
  plan::PlanPtr plan = plan::MakeJoin(
      plan::JoinMethod::kHash,
      plan::MakeFilter(plan::MakeSeqScan("r", "r"), *grp_pred),
      plan::MakeSeqScan("s", "s"), *join_pred);

  auto run = [&](bool vectorized) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.binding = binding;
    ctx.params.predicate_transfer = true;
    ctx.params.vectorized = vectorized;
    ExecStats stats;
    auto rows = exec::ExecutePlan(*plan, &ctx, &stats);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return Canon(*rows);
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on.size(), 16u);  // No false negatives: all 16 matches found.
  EXPECT_EQ(on, off);
}

// ---------------------------------------------------------------------------
// Q1-Q5 end-to-end parity suite.
// ---------------------------------------------------------------------------

class VectorParityTest : public ::testing::Test {
 protected:
  VectorParityTest() {
    config_.scale = 100;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  struct RunResult {
    std::vector<std::string> rows;
    std::unordered_map<std::string, uint64_t> invocations;
  };

  /// Optimizes (kPushDown — vectorization must not depend on placement)
  /// and executes `spec` under `cost_params`, returning canonical rows and
  /// the exact UDF invocation counters.
  RunResult Execute(const plan::QuerySpec& spec,
                    const cost::CostParams& cost_params) {
    optimizer::Optimizer opt(&db_.catalog(), cost_params);
    auto result = opt.Optimize(spec, Algorithm::kPushDown);
    EXPECT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params = workload::ExecParamsFor(cost_params);
    for (const plan::TableRef& ref : spec.tables) {
      ctx.binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    types::RowSchema schema;
    ExecStats stats;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, &stats, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return {workload::CanonicalResults(*rows, schema), stats.invocations};
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(VectorParityTest, QueriesMatchAcrossVectorWorkersTransfer) {
  for (const std::string& id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    ASSERT_TRUE(spec.ok()) << spec.status();
    for (bool transfer : {false, true}) {
      for (double workers : {1.0, 4.0}) {
        SCOPED_TRACE(id + " transfer=" + std::to_string(transfer) +
                     " workers=" + std::to_string(static_cast<int>(workers)));
        cost::CostParams off_params;
        off_params.predicate_transfer = transfer;
        off_params.parallel_workers = workers;
        off_params.vectorized = false;
        cost::CostParams on_params = off_params;
        on_params.vectorized = true;

        const RunResult off = Execute(*spec, off_params);
        const RunResult on = Execute(*spec, on_params);

        // Byte-identical result sets and exact-equal invocation counters.
        EXPECT_EQ(on.rows, off.rows);
        EXPECT_EQ(on.invocations, off.invocations);
      }
    }
  }
}

}  // namespace
}  // namespace ppp
