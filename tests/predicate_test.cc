#include <gtest/gtest.h>

#include <cmath>

#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::expr {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

/// Two tables with exactly known statistics:
///   r: 100 rows, r.key unique (0..99), r.grp 10 distinct, range [0, 9].
///   s: 1000 rows, s.key unique, s.grp 50 distinct.
class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : pool_(&disk_, 256), catalog_(&pool_) {
    auto r = catalog_.CreateTable(
        "r", {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    auto s = catalog_.CreateTable(
        "s", {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(s.ok());
    for (int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE((*r)->Insert(Tuple({Value(i), Value(i % 10)})).ok());
    }
    for (int64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE((*s)->Insert(Tuple({Value(i), Value(i % 50)})).ok());
    }
    EXPECT_TRUE((*r)->Analyze().ok());
    EXPECT_TRUE((*s)->Analyze().ok());
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.4)
            .ok());
    binding_ = {{"r", *r}, {"s", *s}};
    analyzer_ = std::make_unique<PredicateAnalyzer>(&catalog_, binding_);
  }

  PredicateInfo Analyze(const ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  TableBinding binding_;
  std::unique_ptr<PredicateAnalyzer> analyzer_;
};

TEST_F(PredicateTest, EqualityWithConstantUsesDistinctCount) {
  const PredicateInfo info = Analyze(Eq(Col("r", "grp"), Int(3)));
  EXPECT_DOUBLE_EQ(info.selectivity, 0.1);  // 10 distinct values.
  EXPECT_DOUBLE_EQ(info.cost_per_tuple, 0.0);
  EXPECT_FALSE(info.is_join());
  EXPECT_FALSE(info.is_expensive());
  // Free predicates rank -infinity.
  EXPECT_TRUE(std::isinf(info.rank()));
  EXPECT_LT(info.rank(), 0);
}

TEST_F(PredicateTest, ConstantOnLeftWorksToo) {
  const PredicateInfo info = Analyze(Eq(Int(3), Col("r", "grp")));
  EXPECT_DOUBLE_EQ(info.selectivity, 0.1);
}

TEST_F(PredicateTest, EquiJoinUsesMaxDistinct) {
  const PredicateInfo info = Analyze(Eq(Col("r", "key"), Col("s", "key")));
  EXPECT_DOUBLE_EQ(info.selectivity, 1.0 / 1000);  // max(100, 1000).
  EXPECT_TRUE(info.is_join());
  ASSERT_TRUE(info.is_simple_equijoin);
  EXPECT_EQ(info.left_table, "r");
  EXPECT_EQ(info.right_column, "key");
  EXPECT_EQ(info.left_distinct, 100);
  EXPECT_EQ(info.right_distinct, 1000);
}

TEST_F(PredicateTest, SameTableEqualityIsNotAJoin) {
  const PredicateInfo info = Analyze(Eq(Col("r", "key"), Col("r", "grp")));
  EXPECT_FALSE(info.is_join());
  EXPECT_FALSE(info.is_simple_equijoin);
}

TEST_F(PredicateTest, RangeSelectivityFromDomain) {
  // r.grp uniform over [0, 9]: grp < 3 keeps 3/9 of the domain span.
  const PredicateInfo info =
      Analyze(Cmp(CompareOp::kLt, Col("r", "grp"), Int(3)));
  EXPECT_NEAR(info.selectivity, 3.0 / 9.0, 1e-9);
  // Flipped constant side: 3 < grp means grp > 3.
  const PredicateInfo flipped =
      Analyze(Cmp(CompareOp::kLt, Int(3), Col("r", "grp")));
  EXPECT_NEAR(flipped.selectivity, 6.0 / 9.0, 1e-9);
}

TEST_F(PredicateTest, RangeWithoutStatsDefaultsToThird) {
  // Comparing two columns: no constant, default 1/3.
  const PredicateInfo info =
      Analyze(Cmp(CompareOp::kLt, Col("r", "key"), Col("r", "grp")));
  EXPECT_NEAR(info.selectivity, 1.0 / 3.0, 1e-9);
}

TEST_F(PredicateTest, NotEqualIsComplement) {
  const PredicateInfo info =
      Analyze(Cmp(CompareOp::kNe, Col("r", "grp"), Int(3)));
  EXPECT_NEAR(info.selectivity, 0.9, 1e-9);
}

TEST_F(PredicateTest, BooleanUdfUsesDeclaredSelectivityAndCost) {
  const PredicateInfo info = Analyze(Call("costly", {Col("r", "key")}));
  EXPECT_DOUBLE_EQ(info.selectivity, 0.4);
  EXPECT_DOUBLE_EQ(info.cost_per_tuple, 100.0);
  EXPECT_TRUE(info.is_expensive());
  EXPECT_DOUBLE_EQ(info.rank(), (0.4 - 1.0) / 100.0);
}

TEST_F(PredicateTest, AndMultipliesOrCombines) {
  ExprPtr a = Eq(Col("r", "grp"), Int(1));   // 0.1
  ExprPtr b = Call("costly", {Col("r", "key")});  // 0.4
  EXPECT_NEAR(Analyze(And(a, b)).selectivity, 0.04, 1e-9);
  EXPECT_NEAR(Analyze(Or(a, b)).selectivity, 0.1 + 0.4 - 0.04, 1e-9);
  EXPECT_NEAR(Analyze(Not(b)).selectivity, 0.6, 1e-9);
}

TEST_F(PredicateTest, NestedFunctionCostsSum) {
  const PredicateInfo info = Analyze(
      And(Call("costly", {Col("r", "key")}),
          Call("costly", {Col("r", "grp")})));
  EXPECT_DOUBLE_EQ(info.cost_per_tuple, 200.0);
}

TEST_F(PredicateTest, ExpensiveJoinPredicate) {
  const PredicateInfo info =
      Analyze(Call("costly", {Col("r", "key"), Col("s", "key")}));
  EXPECT_TRUE(info.is_join());
  EXPECT_TRUE(info.is_expensive());
  EXPECT_FALSE(info.is_simple_equijoin);
  EXPECT_EQ(info.tables.size(), 2u);
}

TEST_F(PredicateTest, InputDistinctValuesSingleColumn) {
  EXPECT_EQ(Analyze(Call("costly", {Col("r", "grp")})).input_distinct_values,
            10);
  EXPECT_EQ(Analyze(Call("costly", {Col("r", "key")})).input_distinct_values,
            100);
}

TEST_F(PredicateTest, InputDistinctValuesProductClamped) {
  // grp × key distinct = 10 * 100 = 1000, clamped by |r| x-product = 100.
  const PredicateInfo info =
      Analyze(Call("costly", {Col("r", "grp"), Col("r", "key")}));
  EXPECT_EQ(info.input_distinct_values, 100);
}

TEST_F(PredicateTest, UnboundAliasFails) {
  EXPECT_FALSE(analyzer_->Analyze(Eq(Col("zz", "a"), Int(1))).ok());
}

TEST_F(PredicateTest, UnknownFunctionFails) {
  EXPECT_FALSE(analyzer_->Analyze(Call("nope", {Col("r", "key")})).ok());
}

TEST_F(PredicateTest, RankOrderingMatchesPaperFormula) {
  // Lower selectivity and lower cost both mean earlier evaluation.
  catalog::FunctionRegistry& fns = catalog_.functions();
  ASSERT_TRUE(fns.RegisterCostlyPredicate("cheap_selective", 1, 0.1).ok());
  ASSERT_TRUE(fns.RegisterCostlyPredicate("pricey_loose", 50, 0.9).ok());
  const double r1 =
      Analyze(Call("cheap_selective", {Col("r", "key")})).rank();
  const double r2 = Analyze(Call("pricey_loose", {Col("r", "key")})).rank();
  EXPECT_LT(r1, r2);  // Apply cheap & selective first.
}

}  // namespace
}  // namespace ppp::expr
