// Tests for the bushy-tree enumerator extension (§3.1's sketched LDL fix).

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::optimizer {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

class BushyTest : public ::testing::Test {
 protected:
  BushyTest() : pool_(&disk_, 512), catalog_(&pool_) {
    MakeTable("a", 400, 8);
    MakeTable("b", 900, 30);
    MakeTable("c", 1600, 40);
    MakeTable("d", 700, 14);
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.5)
            .ok());
  }

  void MakeTable(const std::string& name, int64_t rows, int64_t groups) {
    auto table = catalog_.CreateTable(name, {{"key", TypeId::kInt64},
                                             {"grp", TypeId::kInt64}});
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)->Insert(Tuple({Value(i), Value(i % groups)})).ok());
    }
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  OptimizeResult Optimize(const std::string& sql, Algorithm algorithm) {
    auto spec = parser::ParseAndBind(sql, catalog_);
    EXPECT_TRUE(spec.ok()) << spec.status();
    Optimizer opt(&catalog_, {});
    auto result = opt.Optimize(*spec, algorithm);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  /// True if some join's inner child subtree contains more than one scan.
  static bool HasBushyJoin(const plan::PlanNode& node) {
    if (node.kind == plan::PlanKind::kJoin &&
        node.children[1]->CollectAliases().size() > 1) {
      return true;
    }
    for (const plan::PlanPtr& child : node.children) {
      if (HasBushyJoin(*child)) return true;
    }
    return false;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(BushyTest, BushyNeverEstimatedWorseThanLeftDeepLdl) {
  const std::string queries[] = {
      "SELECT * FROM a, b WHERE a.key = b.key AND costly(b.key)",
      "SELECT * FROM a, b, c WHERE a.key = b.key AND b.grp = c.grp AND "
      "costly(a.key)",
      "SELECT * FROM a, b, c, d WHERE a.key = b.key AND b.grp = c.grp AND "
      "c.key = d.key AND costly(c.key) AND costly(a.key)",
  };
  for (const std::string& sql : queries) {
    const double left_deep = Optimize(sql, Algorithm::kLdl).est_cost;
    const double bushy = Optimize(sql, Algorithm::kLdlBushy).est_cost;
    EXPECT_LE(bushy, left_deep * 1.0001) << sql;
  }
}

TEST_F(BushyTest, LeftDeepLdlHasNoBushyJoins) {
  OptimizeResult result = Optimize(
      "SELECT * FROM a, b, c, d WHERE a.key = b.key AND b.grp = c.grp AND "
      "c.key = d.key AND costly(c.key)",
      Algorithm::kLdl);
  EXPECT_FALSE(HasBushyJoin(*result.plan));
}

TEST_F(BushyTest, BushyModeCanProduceBushyJoins) {
  // Two disjoint join pairs forced together: (a ⋈ b) x (c ⋈ d) is the
  // natural bushy shape; left-deep must thread one chain through.
  OptimizeResult result = Optimize(
      "SELECT * FROM a, b, c, d WHERE a.key = b.key AND c.key = d.key",
      Algorithm::kLdlBushy);
  // Not guaranteed bushy if a left-deep plan costs the same, but the
  // result must be valid and cover all four tables.
  EXPECT_EQ(result.plan->CollectAliases().size(), 4u);
  EXPECT_GT(result.est_cost, 0);
}

TEST_F(BushyTest, BushyRetainsMorePlans) {
  const std::string sql =
      "SELECT * FROM a, b, c, d WHERE a.key = b.key AND b.grp = c.grp AND "
      "c.key = d.key AND costly(c.key)";
  auto spec = parser::ParseAndBind(sql, catalog_);
  ASSERT_TRUE(spec.ok());
  Optimizer opt(&catalog_, {});
  auto left_deep = opt.Optimize(*spec, Algorithm::kLdl);
  auto bushy = opt.Optimize(*spec, Algorithm::kLdlBushy);
  ASSERT_TRUE(left_deep.ok());
  ASSERT_TRUE(bushy.ok());
  EXPECT_GE(bushy->plans_retained, left_deep->plans_retained);
}

}  // namespace
}  // namespace ppp::optimizer
