// Statistics subsystem tests: equi-depth histogram error bounds on
// uniform, Zipfian and heavy-duplicate data; HyperLogLog NDV accuracy;
// sampling reproducibility (fixed seed + PPP_STATS_SEED override); the
// feedback > stats > declared provenance ladder in PredicateAnalyzer;
// concurrent ANALYZE against running queries; and result invariance of
// the benchmark queries with statistics on/off.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "stats/collector.h"
#include "stats/estimator.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using types::TypeId;
using types::Value;

// ---- Equi-depth histogram error bounds -----------------------------------

std::vector<Value> ToValues(const std::vector<int64_t>& data) {
  std::vector<Value> values;
  values.reserve(data.size());
  for (int64_t x : data) values.push_back(Value(x));
  return values;
}

double ExactFractionBelow(const std::vector<int64_t>& data, int64_t v,
                          bool inclusive) {
  size_t count = 0;
  for (int64_t x : data) count += inclusive ? (x <= v) : (x < v);
  return static_cast<double>(count) / static_cast<double>(data.size());
}

double ExactFractionEqual(const std::vector<int64_t>& data, int64_t v) {
  size_t count = 0;
  for (int64_t x : data) count += (x == v);
  return static_cast<double>(count) / static_cast<double>(data.size());
}

/// Checks FractionBelow against the exact empirical fraction at every
/// probe, in both inclusive modes. An equi-depth histogram built over the
/// full data set is off by at most ~2 bucket masses (the probe's bucket
/// plus interpolation error), more when duplicates force uneven buckets —
/// callers pass a bound matched to their data.
void ExpectRangeWithin(const stats::EquiDepthHistogram& h,
                       const std::vector<int64_t>& data,
                       const std::vector<int64_t>& probes, double bound) {
  for (int64_t v : probes) {
    for (bool inclusive : {false, true}) {
      const double est = h.FractionBelow(Value(v), inclusive);
      const double exact = ExactFractionBelow(data, v, inclusive);
      EXPECT_NEAR(est, exact, bound)
          << "v=" << v << " inclusive=" << inclusive;
    }
  }
}

TEST(HistogramTest, UniformDataRangeWithinEquiDepthBound) {
  common::Random rng(1);
  std::vector<int64_t> data;
  data.reserve(8192);
  for (int i = 0; i < 8192; ++i) {
    data.push_back(static_cast<int64_t>(rng.NextUint64(4096)));
  }
  const auto h = stats::EquiDepthHistogram::Build(ToValues(data), 64);
  ASSERT_FALSE(h.empty());
  EXPECT_LE(h.buckets().size(), 64u);
  EXPECT_EQ(h.total_count(), 8192u);

  // 2 bucket masses = 2/64; uniform data has no heavy runs, so the bound
  // holds with room to spare.
  ExpectRangeWithin(h, data, {0, 1, 500, 1024, 2048, 3000, 4095, 4096},
                    2.0 / 64 + 1e-9);
}

TEST(HistogramTest, ZipfianDataRangeWithinEquiDepthBound) {
  // Zipf(s=1.2) over ranks 1..1000, sampled by inverse CDF. The head
  // ranks are heavy runs; equi-depth bucketing keeps each run in one
  // bucket, so range error stays bounded by the largest run's mass plus
  // one bucket (a run of a frequent value can overfill its bucket).
  const int kRanks = 1000;
  std::vector<double> cdf(kRanks);
  double total = 0.0;
  for (int r = 1; r <= kRanks; ++r) total += 1.0 / std::pow(r, 1.2);
  double acc = 0.0;
  for (int r = 1; r <= kRanks; ++r) {
    acc += 1.0 / std::pow(r, 1.2) / total;
    cdf[r - 1] = acc;
  }
  common::Random rng(7);
  std::vector<int64_t> data;
  data.reserve(8192);
  for (int i = 0; i < 8192; ++i) {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    data.push_back(static_cast<int64_t>(it - cdf.begin()) + 1);
  }
  const auto h = stats::EquiDepthHistogram::Build(ToValues(data), 64);
  ASSERT_FALSE(h.empty());

  const double top_mass = ExactFractionEqual(data, 1);  // Largest run.
  ExpectRangeWithin(h, data, {1, 2, 3, 5, 10, 50, 200, 1000},
                    top_mass + 2.0 / 64 + 1e-9);
}

TEST(HistogramTest, HeavyDuplicatesKeepRunsIntact) {
  // 6 distinct values, 1500 copies each. Value runs are never split
  // across buckets, so every bucket boundary is also a run boundary and
  // both equality and range estimates are exact.
  std::vector<int64_t> data;
  for (int64_t v : {10, 20, 30, 40, 50, 60}) {
    for (int i = 0; i < 1500; ++i) data.push_back(v);
  }
  const auto h = stats::EquiDepthHistogram::Build(ToValues(data), 8);
  ASSERT_FALSE(h.empty());

  for (int64_t v : {10, 20, 30, 40, 50, 60}) {
    EXPECT_DOUBLE_EQ(h.FractionEqual(Value(v)), 1.0 / 6) << "v=" << v;
    EXPECT_DOUBLE_EQ(h.FractionBelow(Value(v), /*inclusive=*/true) -
                         h.FractionBelow(Value(v), /*inclusive=*/false),
                     1.0 / 6)
        << "v=" << v;
  }
  ExpectRangeWithin(h, data, {9, 10, 11, 20, 35, 60, 61}, 1e-9);
}

TEST(HistogramTest, EqualityInGapIsZero) {
  std::vector<int64_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(0);
  for (int i = 0; i < 100; ++i) data.push_back(10);
  const auto h = stats::EquiDepthHistogram::Build(ToValues(data), 4);
  // 5 lies inside the histogram's domain but no sampled value equals it.
  EXPECT_DOUBLE_EQ(h.FractionEqual(Value(int64_t{5})), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionEqual(Value(int64_t{0})), 0.5);
}

// ---- HyperLogLog NDV accuracy --------------------------------------------

TEST(HyperLogLogTest, IntNdvWithinFivePercentAt14Bits) {
  // 2^14 registers give ~0.8% standard error; 5% is a ~6 sigma envelope,
  // deterministic for a fixed hash and data set.
  stats::HyperLogLog hll(14);
  const int kDistinct = 100000;
  for (int64_t i = 0; i < kDistinct; ++i) {
    hll.AddValue(Value(i * 7919 + 3));  // Arbitrary distinct keys.
    hll.AddValue(Value(i * 7919 + 3));  // Duplicates must not inflate.
  }
  const double est = hll.Estimate();
  EXPECT_NEAR(est, kDistinct, 0.05 * kDistinct);
  EXPECT_EQ(hll.additions(), static_cast<uint64_t>(2 * kDistinct));
}

TEST(HyperLogLogTest, StringNdvWithinFivePercentAt14Bits) {
  stats::HyperLogLog hll(14);
  const int kDistinct = 50000;
  for (int i = 0; i < kDistinct; ++i) {
    hll.AddValue(Value("key-" + std::to_string(i)));
  }
  EXPECT_NEAR(hll.Estimate(), kDistinct, 0.05 * kDistinct);
}

TEST(HyperLogLogTest, SmallCardinalityIsNearExact) {
  // The linear-counting correction makes tiny NDVs essentially exact.
  stats::HyperLogLog hll(14);
  for (int64_t i = 0; i < 42; ++i) hll.AddValue(Value(i));
  EXPECT_NEAR(hll.Estimate(), 42.0, 1.0);
}

TEST(HyperLogLogTest, MergeMatchesUnion) {
  stats::HyperLogLog a(14);
  stats::HyperLogLog b(14);
  for (int64_t i = 0; i < 30000; ++i) a.AddValue(Value(i));
  for (int64_t i = 20000; i < 50000; ++i) b.AddValue(Value(i));
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), 50000.0, 0.05 * 50000);
}

TEST(HyperLogLogTest, NumericHashIsTypeConsistent) {
  // 3 == 3.0 under Value::Compare, so the sketch must hash them alike or
  // NDV would double-count mixed-type columns.
  EXPECT_EQ(stats::StableValueHash(Value(int64_t{3})),
            stats::StableValueHash(Value(3.0)));
  EXPECT_NE(stats::StableValueHash(Value(int64_t{3})),
            stats::StableValueHash(Value(int64_t{4})));
  EXPECT_NE(stats::StableValueHash(Value(3.5)),
            stats::StableValueHash(Value(int64_t{3})));
}

// ---- Collector: sampling, determinism, seeds -----------------------------

/// A small hand-built table with planted skew: k is 30% the value 7 and
/// uniform over [100,170) otherwise; u is unique. The declared stats for k
/// claim it is unique — deliberately wrong, so the ladder tests can watch
/// ANALYZE correct them.
class StatsTableTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 2000;
  static constexpr int64_t kHeavy = 7;
  static constexpr double kHeavyFraction = 0.3;

  StatsTableTest() {
    auto t = db_.catalog().CreateTable(
        "t", {{"k", TypeId::kInt64}, {"u", TypeId::kInt64}});
    EXPECT_TRUE(t.ok());
    table_ = *t;
    for (int64_t i = 0; i < kRows; ++i) {
      const int64_t k = i < kRows * kHeavyFraction ? kHeavy : 100 + i % 70;
      EXPECT_TRUE(table_->Insert(types::Tuple({Value(k), Value(i)})).ok());
    }
    catalog::ColumnStats wrong;
    wrong.num_distinct = kRows;  // Claims unique; truly 71 distinct.
    wrong.min_value = 0;
    wrong.max_value = kRows - 1;
    EXPECT_TRUE(table_->SetDeclaredStats("k", wrong).ok());
  }

  /// Options with the reservoir covering the whole table, so sample
  /// estimates are exact up to sketch error.
  static stats::AnalyzeOptions ExactOptions() {
    stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
    options.reservoir_capacity = 4096;
    return options;
  }

  workload::Database db_;
  catalog::Table* table_ = nullptr;
};

TEST_F(StatsTableTest, BuildIsDeterministicForFixedSeed) {
  stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
  options.reservoir_capacity = 256;  // Force real sampling decisions.
  auto a = stats::BuildTableStatistics(*table_, options);
  auto b = stats::BuildTableStatistics(*table_, options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ((*a)->ToString(), (*b)->ToString());
  EXPECT_EQ((*a)->seed, options.seed);
  EXPECT_EQ((*a)->sample_rows, 256u);
}

TEST_F(StatsTableTest, DifferentSeedsDrawDifferentSamples) {
  stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
  options.reservoir_capacity = 64;  // Sample << table: seeds must matter.
  auto a = stats::BuildTableStatistics(*table_, options);
  options.seed += 1;
  auto b = stats::BuildTableStatistics(*table_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->seed, (*b)->seed);
  EXPECT_NE((*a)->ToString(), (*b)->ToString());
}

TEST_F(StatsTableTest, EnvSeedOverridesDefault) {
  ASSERT_EQ(setenv("PPP_STATS_SEED", "424242", 1), 0);
  EXPECT_EQ(stats::AnalyzeOptions::Default().seed, 424242u);
  ASSERT_EQ(unsetenv("PPP_STATS_SEED"), 0);
  EXPECT_EQ(stats::AnalyzeOptions::Default().seed,
            stats::AnalyzeOptions{}.seed);
}

TEST_F(StatsTableTest, CollectsExactScalarsAndAccurateNdv) {
  ASSERT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
  const auto snapshot = table_->collected_stats();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->row_count, static_cast<uint64_t>(kRows));

  const stats::ColumnDistribution* k = snapshot->Find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->row_count, static_cast<uint64_t>(kRows));
  EXPECT_EQ(k->null_count, 0u);
  ASSERT_TRUE(k->has_range);
  EXPECT_EQ(k->min_value.AsInt64(), kHeavy);
  EXPECT_EQ(k->max_value.AsInt64(), 169);
  EXPECT_NEAR(k->ndv, 71.0, 0.05 * 71);  // True distinct: 7 plus 100..169.

  const stats::ColumnDistribution* u = snapshot->Find("u");
  ASSERT_NE(u, nullptr);
  EXPECT_NEAR(u->ndv, static_cast<double>(kRows), 0.05 * kRows);
}

TEST_F(StatsTableTest, McvListCapturesPlantedHeavyHitter) {
  ASSERT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
  const auto snapshot = table_->collected_stats();
  const stats::ColumnDistribution* k = snapshot->Find("k");
  ASSERT_NE(k, nullptr);
  ASSERT_FALSE(k->mcvs.empty());
  bool found = false;
  for (const stats::MostCommonValue& mcv : k->mcvs) {
    if (mcv.value.Compare(Value(kHeavy)) == 0) {
      found = true;
      EXPECT_NEAR(mcv.frequency, kHeavyFraction, 0.02);
    }
  }
  EXPECT_TRUE(found) << "heavy hitter missing from MCV list";
  EXPECT_LE(k->mcv_total_frequency, 1.0);
}

// ---- Estimator over collected distributions ------------------------------

class EstimatorTest : public StatsTableTest {
 protected:
  EstimatorTest() {
    EXPECT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
    snapshot_ = table_->collected_stats();
    k_ = snapshot_->Find("k");
    EXPECT_NE(k_, nullptr);
  }

  std::shared_ptr<const stats::TableStatistics> snapshot_;
  const stats::ColumnDistribution* k_ = nullptr;
};

TEST_F(EstimatorTest, EqualityUsesMcvFrequency) {
  const auto est = stats::EstimateEquals(*k_, Value(kHeavy));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, kHeavyFraction, 0.02);
}

TEST_F(EstimatorTest, EqualityOutsideRangeIsZero) {
  const auto below = stats::EstimateEquals(*k_, Value(int64_t{-5}));
  const auto above = stats::EstimateEquals(*k_, Value(int64_t{500}));
  ASSERT_TRUE(below.has_value());
  ASSERT_TRUE(above.has_value());
  EXPECT_DOUBLE_EQ(*below, 0.0);
  EXPECT_DOUBLE_EQ(*above, 0.0);
}

TEST_F(EstimatorTest, RangeMatchesTruthAndComplementsSum) {
  // True fraction below 100: exactly the heavy hitter's 30%.
  const auto lt = stats::EstimateRange(*k_, stats::RangeOp::kLt,
                                       Value(int64_t{100}));
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, kHeavyFraction, 0.05);

  // P(< v) + P(>= v) must be ~1 (same histogram walk, complemented).
  for (int64_t v : {7, 100, 135, 169}) {
    const auto less = stats::EstimateRange(*k_, stats::RangeOp::kLt,
                                           Value(v));
    const auto geq = stats::EstimateRange(*k_, stats::RangeOp::kGe,
                                          Value(v));
    ASSERT_TRUE(less.has_value() && geq.has_value()) << "v=" << v;
    EXPECT_NEAR(*less + *geq, 1.0, 1e-6) << "v=" << v;
  }
}

TEST_F(EstimatorTest, JoinFanoutCanExceedOnePerInput) {
  // 2000 x 400 rows over 50 shared keys: 16000 join rows, fan-out 8 over
  // the left input. This >1 per-input selectivity is exactly what flips a
  // "free" join's rank above an expensive predicate (paper S3.2).
  const stats::JoinSelectivity j =
      stats::EstimateJoinSelectivity(2000, 50, 400, 50);
  EXPECT_DOUBLE_EQ(j.over_left, 8.0);
  EXPECT_DOUBLE_EQ(j.over_right, 40.0);
  EXPECT_DOUBLE_EQ(j.over_cross, 1.0 / 50);
}

// ---- Provenance ladder: feedback > stats > declared ----------------------

class LadderTest : public StatsTableTest {
 protected:
  LadderTest() {
    catalog::FunctionDef def;
    def.name = "udfk";
    def.cost_per_call = 20.0;
    def.selectivity = 0.5;
    def.impl = [](const std::vector<Value>& args) {
      return Value(args[0].AsInt64() % 2 == 0);
    };
    EXPECT_TRUE(db_.catalog().functions().Register(def).ok());
    obs::PredicateFeedbackStore::Global().Clear();
  }
  ~LadderTest() override { obs::PredicateFeedbackStore::Global().Clear(); }

  expr::PredicateInfo Analyze(const std::string& sql, bool use_stats,
                              bool use_feedback) {
    auto spec = parser::ParseAndBind(sql, db_.catalog());
    EXPECT_TRUE(spec.ok()) << spec.status();
    expr::TableBinding binding;
    for (const plan::TableRef& ref : spec->tables) {
      binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    expr::PredicateAnalyzer analyzer(&db_.catalog(), binding);
    analyzer.set_use_stats(use_stats);
    if (use_feedback) {
      analyzer.set_feedback(&obs::PredicateFeedbackStore::Global());
    }
    EXPECT_EQ(spec->conjuncts.size(), 1u);
    auto info = analyzer.Analyze(spec->conjuncts[0]);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }
};

TEST_F(LadderTest, DeclaredTierBeforeAnalyze) {
  const expr::PredicateInfo info =
      Analyze("SELECT * FROM t WHERE t.k = 7", /*use_stats=*/true,
              /*use_feedback=*/false);
  EXPECT_EQ(info.selectivity_source, expr::StatSource::kDeclared);
  // Declared stats claim k unique over 2000 rows.
  EXPECT_NEAR(info.selectivity, 1.0 / kRows, 1e-9);
}

TEST_F(LadderTest, StatsTierAfterAnalyze) {
  ASSERT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
  const expr::PredicateInfo info =
      Analyze("SELECT * FROM t WHERE t.k = 7", /*use_stats=*/true,
              /*use_feedback=*/false);
  EXPECT_EQ(info.selectivity_source, expr::StatSource::kStats);
  // The MCV list knows 7 is ~30% of the table, not 1/2000.
  EXPECT_NEAR(info.selectivity, kHeavyFraction, 0.02);

  // Ranges ride the histogram too.
  const expr::PredicateInfo range =
      Analyze("SELECT * FROM t WHERE t.k < 100", /*use_stats=*/true,
              /*use_feedback=*/false);
  EXPECT_EQ(range.selectivity_source, expr::StatSource::kStats);
  EXPECT_NEAR(range.selectivity, kHeavyFraction, 0.05);
}

TEST_F(LadderTest, DisablingStatsFallsBackToDeclared) {
  ASSERT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
  const expr::PredicateInfo info =
      Analyze("SELECT * FROM t WHERE t.k = 7", /*use_stats=*/false,
              /*use_feedback=*/false);
  EXPECT_EQ(info.selectivity_source, expr::StatSource::kDeclared);
  EXPECT_NEAR(info.selectivity, 1.0 / kRows, 1e-9);
}

TEST_F(LadderTest, FeedbackTierBeatsDeclaredForUdfs) {
  obs::FeedbackEntry entry;
  entry.cost_per_call = 3.0;
  entry.selectivity = 0.25;
  entry.has_selectivity = true;
  entry.samples = 100;
  obs::PredicateFeedbackStore::Global().Update("udfk", entry);

  const expr::PredicateInfo declared =
      Analyze("SELECT * FROM t WHERE udfk(t.u)", /*use_stats=*/true,
              /*use_feedback=*/false);
  EXPECT_EQ(declared.selectivity_source, expr::StatSource::kDeclared);
  EXPECT_EQ(declared.cost_source, expr::StatSource::kDeclared);
  EXPECT_DOUBLE_EQ(declared.selectivity, 0.5);
  EXPECT_DOUBLE_EQ(declared.cost_per_tuple, 20.0);

  const expr::PredicateInfo fed =
      Analyze("SELECT * FROM t WHERE udfk(t.u)", /*use_stats=*/true,
              /*use_feedback=*/true);
  EXPECT_EQ(fed.selectivity_source, expr::StatSource::kFeedback);
  EXPECT_EQ(fed.cost_source, expr::StatSource::kFeedback);
  EXPECT_DOUBLE_EQ(fed.selectivity, 0.25);
  EXPECT_DOUBLE_EQ(fed.cost_per_tuple, 3.0);
}

TEST_F(LadderTest, CompositeReportsStrongestTier) {
  ASSERT_TRUE(stats::AnalyzeTable(table_, ExactOptions()).ok());
  obs::FeedbackEntry entry;
  entry.cost_per_call = 3.0;
  entry.selectivity = 0.25;
  entry.has_selectivity = true;
  entry.samples = 100;
  obs::PredicateFeedbackStore::Global().Update("udfk", entry);

  // OR keeps both factors in one conjunct (the binder splits top-level
  // ANDs). A stats-tier factor disjoined with a feedback-tier factor: the
  // composite reports the strongest tier used anywhere inside it.
  const expr::PredicateInfo info =
      Analyze("SELECT * FROM t WHERE t.k = 7 OR udfk(t.u)",
              /*use_stats=*/true, /*use_feedback=*/true);
  EXPECT_EQ(info.selectivity_source, expr::StatSource::kFeedback);
  const double expected =
      kHeavyFraction + 0.25 - kHeavyFraction * 0.25;  // Independent OR.
  EXPECT_NEAR(info.selectivity, expected, 0.02);
}

// ---- Concurrency: ANALYZE against running queries ------------------------

TEST(StatsConcurrencyTest, AnalyzeRacesQueriesSafely) {
  workload::Database db;
  workload::BenchmarkConfig config;
  config.scale = 120;
  config.table_numbers = {3, 6, 10};
  ASSERT_TRUE(workload::LoadBenchmarkDatabase(&db, config).ok());
  ASSERT_TRUE(workload::RegisterBenchmarkFunctions(&db).ok());
  auto spec = workload::GetBenchmarkQuery(db, config, "Q1");
  ASSERT_TRUE(spec.ok()) << spec.status();

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> reference_rows{0};

  std::thread analyzer([&db, &failed]() {
    stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
    options.reservoir_capacity = 512;  // Keep each pass quick.
    for (int i = 0; i < 6; ++i) {
      options.seed += static_cast<uint64_t>(i);  // Churn the snapshots.
      if (!stats::AnalyzeAll(&db.catalog(), options).ok()) {
        failed = true;
        return;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &spec, &failed, &reference_rows]() {
      for (int i = 0; i < 3; ++i) {
        auto m = workload::RunWithAlgorithm(
            &db, *spec, optimizer::Algorithm::kMigration, {}, {});
        if (!m.ok()) {
          failed = true;
          return;
        }
        // Every run must produce the same answer no matter which stats
        // snapshot it planned against.
        uint64_t expected = 0;
        if (!reference_rows.compare_exchange_strong(expected,
                                                    m->output_rows) &&
            expected != m->output_rows) {
          failed = true;
          return;
        }
      }
    });
  }
  analyzer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  // After the dust settles every table carries a stats snapshot.
  for (const std::string& name : db.catalog().TableNames()) {
    EXPECT_NE((*db.catalog().GetTable(name))->collected_stats(), nullptr)
        << name;
  }
}

// ---- Result invariance: stats steer plans, never answers -----------------

class StatsInvarianceTest : public ::testing::Test {
 protected:
  StatsInvarianceTest() {
    config_.scale = 200;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  std::vector<std::string> ResultsOf(const plan::QuerySpec& spec,
                                     bool use_stats, double workers) {
    cost::CostParams cost_params;
    cost_params.use_collected_stats = use_stats;
    cost_params.parallel_workers = workers;
    optimizer::Optimizer opt(&db_.catalog(), cost_params);
    auto result = opt.Optimize(spec, optimizer::Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params = workload::ExecParamsFor(cost_params);
    for (const plan::TableRef& ref : spec.tables) {
      ctx.binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    types::RowSchema schema;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return workload::CanonicalResults(*rows, schema);
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(StatsInvarianceTest, BenchmarkResultsIdenticalWithStatsOnOff) {
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    ASSERT_TRUE(spec.ok()) << spec.status();
    // Reference answer: declared stats only, single worker.
    const std::vector<std::string> reference =
        ResultsOf(*spec, /*use_stats=*/false, /*workers=*/1);
    EXPECT_FALSE(reference.empty()) << id;

    ASSERT_TRUE(
        stats::AnalyzeAll(&db_.catalog(), stats::AnalyzeOptions::Default())
            .ok());
    EXPECT_EQ(ResultsOf(*spec, /*use_stats=*/true, /*workers=*/1),
              reference)
        << id << " stats on, 1 worker";
    EXPECT_EQ(ResultsOf(*spec, /*use_stats=*/true, /*workers=*/4),
              reference)
        << id << " stats on, 4 workers";
    EXPECT_EQ(ResultsOf(*spec, /*use_stats=*/false, /*workers=*/4),
              reference)
        << id << " stats off, 4 workers";
  }
}

}  // namespace
}  // namespace ppp
