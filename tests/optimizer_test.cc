#include <gtest/gtest.h>

#include "optimizer/join_enumerator.h"
#include "optimizer/optimizer.h"
#include "optimizer/optimizer_context.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::optimizer {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

/// Counts nodes of a kind in a plan tree.
int CountKind(const plan::PlanNode& node, plan::PlanKind kind) {
  int n = node.kind == kind ? 1 : 0;
  for (const plan::PlanPtr& child : node.children) {
    n += CountKind(*child, kind);
  }
  return n;
}

/// Depth (root=0) of the first expensive filter, -1 if none.
int ExpensiveFilterDepth(const plan::PlanNode& node, int depth = 0) {
  if (node.kind == plan::PlanKind::kFilter && node.predicate.is_expensive()) {
    return depth;
  }
  for (const plan::PlanPtr& child : node.children) {
    const int d = ExpensiveFilterDepth(*child, depth + 1);
    if (d >= 0) return d;
  }
  return -1;
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : pool_(&disk_, 512), catalog_(&pool_) {
    MakeTable("r", 1000, 10);
    MakeTable("s", 5000, 50);
    MakeTable("q", 300, 6);
    auto& fns = catalog_.functions();
    EXPECT_TRUE(fns.RegisterCostlyPredicate("costly", 100, 0.5).ok());
    EXPECT_TRUE(fns.RegisterCostlyPredicate("cheapish", 0.5, 0.5).ok());
    EXPECT_TRUE(fns.RegisterCostlyPredicate("pricey_join", 50, 0.01).ok());
  }

  void MakeTable(const std::string& name, int64_t rows, int64_t groups) {
    auto table = catalog_.CreateTable(name, {{"key", TypeId::kInt64},
                                             {"grp", TypeId::kInt64},
                                             {"pad", TypeId::kString}});
    ASSERT_TRUE(table.ok());
    const std::string pad(60, 'p');
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)->Insert(Tuple({Value(i), Value(i % groups), Value(pad)}))
              .ok());
    }
    ASSERT_TRUE((*table)->CreateIndex("key").ok());
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  plan::QuerySpec Parse(const std::string& sql) {
    auto spec = parser::ParseAndBind(sql, catalog_);
    EXPECT_TRUE(spec.ok()) << spec.status();
    return *spec;
  }

  OptimizeResult Optimize(const std::string& sql, Algorithm algorithm,
                          cost::CostParams params = {}) {
    Optimizer opt(&catalog_, params);
    auto result = opt.Optimize(Parse(sql), algorithm);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(OptimizerTest, SingleTableScanOnly) {
  OptimizeResult result =
      Optimize("SELECT * FROM r", Algorithm::kPushDown);
  EXPECT_EQ(result.plan->kind, plan::PlanKind::kSeqScan);
}

TEST_F(OptimizerTest, IndexScanChosenForSelectiveEquality) {
  OptimizeResult result =
      Optimize("SELECT * FROM s WHERE s.key = 17", Algorithm::kPushDown);
  EXPECT_EQ(result.plan->kind, plan::PlanKind::kIndexScan);
  EXPECT_EQ(result.plan->index_column, "key");
}

TEST_F(OptimizerTest, SeqScanKeptWhenNoIndexMatches) {
  OptimizeResult result =
      Optimize("SELECT * FROM s WHERE s.grp = 17", Algorithm::kPushDown);
  // grp has no index: filter over scan.
  EXPECT_EQ(result.plan->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(result.plan->children[0]->kind, plan::PlanKind::kSeqScan);
}

TEST_F(OptimizerTest, SingleTableSelectionsOrderedByRank) {
  // PushDown+ guarantee (§4.1): on one table, selections are applied in
  // ascending rank order. costly: rank (0.5-1)/100 = -0.005; cheapish:
  // (0.5-1)/0.5 = -1. cheapish must be evaluated first (lower in plan).
  OptimizeResult result = Optimize(
      "SELECT * FROM r WHERE costly(r.key) AND cheapish(r.key)",
      Algorithm::kPushDown);
  const plan::PlanNode* top = result.plan.get();
  ASSERT_EQ(top->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(top->predicate.expr->function_name, "costly");
  const plan::PlanNode* below = top->children[0].get();
  ASSERT_EQ(below->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(below->predicate.expr->function_name, "cheapish");
}

TEST_F(OptimizerTest, CheapPredicatesBelowExpensive) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r WHERE costly(r.key) AND r.grp = 3",
      Algorithm::kPushDown);
  // The free predicate (rank -inf) sits below the expensive one.
  const plan::PlanNode* top = result.plan.get();
  ASSERT_EQ(top->kind, plan::PlanKind::kFilter);
  EXPECT_TRUE(top->predicate.is_expensive());
  EXPECT_FALSE(top->children[0]->predicate.is_expensive());
}

TEST_F(OptimizerTest, TwoTableJoinProducesJoinPlan) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s WHERE r.key = s.key", Algorithm::kPushDown);
  EXPECT_EQ(CountKind(*result.plan, plan::PlanKind::kJoin), 1);
  // Result covers both tables.
  const std::vector<std::string> aliases = result.plan->CollectAliases();
  EXPECT_EQ(aliases.size(), 2u);
}

TEST_F(OptimizerTest, ThreeTableJoinIsLeftDeep) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s, q WHERE r.key = s.key AND q.key = r.key",
      Algorithm::kPushDown);
  // Left-deep: every join's inner child subtree contains exactly one scan.
  std::vector<const plan::PlanNode*> stack = {result.plan.get()};
  while (!stack.empty()) {
    const plan::PlanNode* node = stack.back();
    stack.pop_back();
    if (node->kind == plan::PlanKind::kJoin) {
      EXPECT_EQ(node->children[1]->CollectAliases().size(), 1u);
    }
    for (const plan::PlanPtr& child : node->children) {
      stack.push_back(child.get());
    }
  }
}

TEST_F(OptimizerTest, PushDownPlacesExpensiveAtBase) {
  // Join on unindexed columns so no index-nested-loop plan can hoist the
  // inner filter as a side effect of the access method.
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s WHERE r.grp = s.grp AND costly(s.key)",
      Algorithm::kPushDown);
  // The expensive filter is below the join (depth >= 1 from root).
  const int depth = ExpensiveFilterDepth(*result.plan);
  ASSERT_GE(depth, 0);
  EXPECT_GE(depth, 1);
  EXPECT_EQ(CountKind(*result.plan, plan::PlanKind::kJoin), 1);
}

TEST_F(OptimizerTest, PullUpPlacesExpensiveAtTop) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key)",
      Algorithm::kPullUp);
  EXPECT_EQ(ExpensiveFilterDepth(*result.plan), 0);
}

TEST_F(OptimizerTest, PullUpOrdersPastedPredicatesByRank) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key) AND "
      "cheapish(r.key)",
      Algorithm::kPullUp);
  // Both on top, cheapish (lower rank) below costly.
  const plan::PlanNode* top = result.plan.get();
  ASSERT_EQ(top->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(top->predicate.expr->function_name, "costly");
  ASSERT_EQ(top->children[0]->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(top->children[0]->predicate.expr->function_name, "cheapish");
}

TEST_F(OptimizerTest, AllAlgorithmsProduceValidatedEstimates) {
  const std::string sql =
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key)";
  for (const Algorithm algorithm :
       {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank,
        Algorithm::kMigration, Algorithm::kLdl, Algorithm::kExhaustive}) {
    OptimizeResult result = Optimize(sql, algorithm);
    EXPECT_GT(result.est_cost, 0) << AlgorithmName(algorithm);
    // Every plan covers both tables and keeps the expensive predicate.
    EXPECT_EQ(result.plan->CollectAliases().size(), 2u)
        << AlgorithmName(algorithm);
    EXPECT_GE(ExpensiveFilterDepth(*result.plan), 0)
        << AlgorithmName(algorithm);
  }
}

TEST_F(OptimizerTest, ExhaustiveIsNeverWorseThanHeuristics) {
  const std::string queries[] = {
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key)",
      "SELECT * FROM r, s, q WHERE r.key = s.key AND q.key = r.key AND "
      "costly(r.key)",
      "SELECT * FROM r, s WHERE r.grp = s.grp AND costly(r.key) AND "
      "cheapish(s.key)",
  };
  for (const std::string& sql : queries) {
    const double best = Optimize(sql, Algorithm::kExhaustive).est_cost;
    for (const Algorithm algorithm :
         {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank,
          Algorithm::kMigration}) {
      EXPECT_LE(best, Optimize(sql, algorithm).est_cost * 1.0001)
          << sql << " vs " << AlgorithmName(algorithm);
    }
  }
}

TEST_F(OptimizerTest, MigrationNeverWorseThanPullRankOrPushDown) {
  const std::string queries[] = {
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key)",
      "SELECT * FROM r, s, q WHERE r.key = s.key AND q.key = r.key AND "
      "costly(r.key) AND cheapish(s.key)",
  };
  for (const std::string& sql : queries) {
    const double migration = Optimize(sql, Algorithm::kMigration).est_cost;
    EXPECT_LE(migration, Optimize(sql, Algorithm::kPullRank).est_cost * 1.0001)
        << sql;
    EXPECT_LE(migration, Optimize(sql, Algorithm::kPushDown).est_cost * 1.0001)
        << sql;
  }
}

TEST_F(OptimizerTest, MigrationRetainsUnpruneablePlans) {
  // An expensive predicate that PullRank keeps below a join marks plans
  // unpruneable, growing the memo relative to plain PullRank (§4.4).
  const std::string sql =
      "SELECT * FROM r, s, q WHERE r.key = s.key AND q.key = r.key AND "
      "costly(r.grp)";
  Optimizer opt(&catalog_, {});
  auto pullrank = opt.Optimize(Parse(sql), Algorithm::kPullRank);
  auto migration = opt.Optimize(Parse(sql), Algorithm::kMigration);
  ASSERT_TRUE(pullrank.ok());
  ASSERT_TRUE(migration.ok());
  EXPECT_GE(migration->plans_retained, pullrank->plans_retained);
}

TEST_F(OptimizerTest, ExpensivePrimaryJoinForcesNestLoop) {
  OptimizeResult result = Optimize(
      "SELECT * FROM r, q WHERE pricey_join(r.key, q.key)",
      Algorithm::kPushDown);
  // The only connector is expensive: NLJ with that primary.
  std::vector<const plan::PlanNode*> stack = {result.plan.get()};
  bool found = false;
  while (!stack.empty()) {
    const plan::PlanNode* node = stack.back();
    stack.pop_back();
    if (node->kind == plan::PlanKind::kJoin) {
      EXPECT_EQ(node->join_method, plan::JoinMethod::kNestLoop);
      if (node->predicate.expr != nullptr &&
          node->predicate.is_expensive()) {
        found = true;
      }
    }
    for (const plan::PlanPtr& child : node->children) {
      stack.push_back(child.get());
    }
  }
  // Either the pricey predicate is the join primary or it is a filter over
  // a cross product; both are legal, but it must appear somewhere.
  EXPECT_TRUE(found || ExpensiveFilterDepth(*result.plan) >= 0);
}

TEST_F(OptimizerTest, ProjectAttachedForSelectList) {
  OptimizeResult result = Optimize(
      "SELECT r.key FROM r WHERE r.grp = 1", Algorithm::kPushDown);
  EXPECT_EQ(result.plan->kind, plan::PlanKind::kProject);
}

TEST_F(OptimizerTest, CrossProductWhenNoPredicateConnects) {
  OptimizeResult result =
      Optimize("SELECT * FROM r, q", Algorithm::kPushDown);
  EXPECT_EQ(CountKind(*result.plan, plan::PlanKind::kJoin), 1);
}

TEST_F(OptimizerTest, UnknownAliasInPredicateFails) {
  Optimizer opt(&catalog_, {});
  plan::QuerySpec spec = Parse("SELECT * FROM r");
  spec.conjuncts.push_back(expr::Eq(expr::Col("zz", "a"), expr::Int(1)));
  EXPECT_FALSE(opt.Optimize(spec, Algorithm::kPushDown).ok());
}

TEST_F(OptimizerTest, ContextRejectsDuplicateAliases) {
  plan::QuerySpec spec;
  spec.tables = {{"r", "r"}, {"r", "r"}};
  EXPECT_FALSE(OptimizerContext::Build(&catalog_, spec, {}).ok());
}

TEST_F(OptimizerTest, ContextRejectsEmptyFrom) {
  plan::QuerySpec spec;
  EXPECT_FALSE(OptimizerContext::Build(&catalog_, spec, {}).ok());
}

TEST_F(OptimizerTest, ConnectedDetectsJoinGraphEdges) {
  plan::QuerySpec spec =
      Parse("SELECT * FROM r, s, q WHERE r.key = s.key");
  auto ctx = OptimizerContext::Build(&catalog_, spec, {});
  ASSERT_TRUE(ctx.ok());
  EXPECT_TRUE((*ctx)->Connected(1, 2));   // r-s.
  EXPECT_FALSE((*ctx)->Connected(1, 4));  // r-q: no predicate.
}

TEST_F(OptimizerTest, LdlPullsSelectionsFromInners) {
  // LDL treats the expensive selection as a join element in a left-deep
  // chain: it can never sit below a join's inner. If the selection's table
  // ends up on the inner side of a join, the selection must be above that
  // join.
  OptimizeResult result = Optimize(
      "SELECT * FROM r, s WHERE r.key = s.key AND costly(s.key)",
      Algorithm::kLdl);
  // Walk to the expensive filter; assert nothing below it is a bare inner
  // scan of s with the filter glued on (i.e. filter is above some join or
  // directly over the outer base).
  ASSERT_GE(ExpensiveFilterDepth(*result.plan), 0);
  EXPECT_GT(result.est_cost, 0);
}

}  // namespace
}  // namespace ppp::optimizer
