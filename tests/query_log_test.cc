// Unit tests for the introspection backing stores: the QueryLog ring
// (including wraparound under concurrent writers — run under TSan), the
// TimeSeries sliding window, and the Chrome-trace round-trip with dropped
// events surviving the parse.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/query_log.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "obs/timeseries.h"

namespace ppp {
namespace {

using obs::QueryLog;
using obs::QueryLogRecord;
using obs::StatsTier;
using obs::TimeSeries;
using obs::TimeSeriesPoint;

QueryLogRecord MakeRecord(uint64_t id) {
  QueryLogRecord r;
  r.query_id = id;
  r.text_hash = id * 3;
  r.plan_fingerprint = id * 5;
  r.algorithm = "migration";
  r.rows_out = id;  // Mirrors query_id so torn records are detectable.
  return r;
}

TEST(StatsTierTest, NamesMatchTheProvenanceLadder) {
  EXPECT_STREQ(obs::StatsTierName(StatsTier::kDeclared), "declared");
  EXPECT_STREQ(obs::StatsTierName(StatsTier::kStats), "stats");
  EXPECT_STREQ(obs::StatsTierName(StatsTier::kFeedback), "feedback");
}

TEST(QueryLogTest, AppendsAreSnapshotOldestFirst) {
  QueryLog log;
  for (uint64_t i = 1; i <= 5; ++i) log.Append(MakeRecord(i));
  const std::vector<QueryLogRecord> all = log.Snapshot();
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].query_id, i + 1);
  }
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.evicted(), 0u);
}

TEST(QueryLogTest, WraparoundKeepsNewestAndCountsEvictions) {
  QueryLog log;
  log.set_capacity(4);
  for (uint64_t i = 1; i <= 10; ++i) log.Append(MakeRecord(i));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.evicted(), 6u);
  const std::vector<QueryLogRecord> all = log.Snapshot();
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].query_id, i + 7);  // 7, 8, 9, 10.
  }
}

TEST(QueryLogTest, TailReturnsTheNewestOldestFirst) {
  QueryLog log;
  for (uint64_t i = 1; i <= 8; ++i) log.Append(MakeRecord(i));
  const std::vector<QueryLogRecord> tail = log.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].query_id, 6u);
  EXPECT_EQ(tail[2].query_id, 8u);
  EXPECT_EQ(log.Tail(100).size(), 8u);
}

TEST(QueryLogTest, ShrinkingCapacityKeepsTheNewestRecords) {
  QueryLog log;
  for (uint64_t i = 1; i <= 6; ++i) log.Append(MakeRecord(i));
  log.set_capacity(2);
  const std::vector<QueryLogRecord> all = log.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].query_id, 5u);
  EXPECT_EQ(all[1].query_id, 6u);
}

TEST(QueryLogTest, DisabledLogDropsAppendsButKeepsIssuingIds) {
  QueryLog log;
  EXPECT_EQ(log.NextQueryId(), 1u);
  log.set_enabled(false);
  log.Append(MakeRecord(log.NextQueryId()));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 0u);
  log.set_enabled(true);
  EXPECT_EQ(log.NextQueryId(), 3u);  // Ids advanced through the off window.
}

TEST(QueryLogTest, ClearDropsRecordsButNotIdentity) {
  QueryLog log;
  log.NextQueryId();
  for (uint64_t i = 1; i <= 3; ++i) log.Append(MakeRecord(i));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.evicted(), 0u);
  EXPECT_EQ(log.NextQueryId(), 2u);
}

// The tentpole concurrency contract: writers race each other and a reader
// through ring wraparound without tearing records. Run under
// -DPPP_SANITIZE=thread this is the TSan witness for the log.
TEST(QueryLogTest, ConcurrentWritersWrapWithoutTearingRecords) {
  QueryLog log;
  log.set_capacity(64);  // Far smaller than the append volume: all wrap.
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const QueryLogRecord& r : log.Snapshot()) {
        // A torn record would break the id-mirroring invariants.
        ASSERT_EQ(r.rows_out, r.query_id);
        ASSERT_EQ(r.text_hash, r.query_id * 3);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        log.Append(MakeRecord(log.NextQueryId()));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(log.total(), kWriters * kPerWriter);
  EXPECT_EQ(log.size(), 64u);
  EXPECT_EQ(log.evicted(), kWriters * kPerWriter - 64);
  std::set<uint64_t> ids;
  for (const QueryLogRecord& r : log.Snapshot()) ids.insert(r.query_id);
  EXPECT_EQ(ids.size(), 64u);  // All retained records are distinct.
}

double DeltaOf(const std::vector<TimeSeriesPoint>& points,
               const std::string& name, int64_t bucket) {
  for (const TimeSeriesPoint& p : points) {
    if (p.name == name && p.bucket == bucket) return p.delta;
  }
  return -1.0;
}

TEST(TimeSeriesTest, FirstSampleBaselinesWithoutCreditingHistory) {
  TimeSeries ts;
  ts.SampleAt({{"c", 100}}, 1.5);
  EXPECT_TRUE(ts.Snapshot().empty());  // Baseline only, no delta yet.
  ts.SampleAt({{"c", 130}}, 2.5);
  const std::vector<TimeSeriesPoint> points = ts.Snapshot();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].name, "c");
  EXPECT_EQ(points[0].bucket, 2);
  EXPECT_DOUBLE_EQ(points[0].delta, 30.0);
  EXPECT_DOUBLE_EQ(points[0].window_total, 30.0);
}

TEST(TimeSeriesTest, SameBucketSamplesAccumulate) {
  TimeSeries ts;
  ts.SampleAt({{"c", 0}}, 5.1);
  ts.SampleAt({{"c", 10}}, 5.4);
  ts.SampleAt({{"c", 25}}, 5.9);
  const std::vector<TimeSeriesPoint> points = ts.Snapshot();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].bucket, 5);
  EXPECT_DOUBLE_EQ(points[0].delta, 25.0);
}

TEST(TimeSeriesTest, BackwardsCounterRebaselinesWithoutNegativeDelta) {
  TimeSeries ts;
  ts.SampleAt({{"c", 0}}, 1.0);
  ts.SampleAt({{"c", 50}}, 2.0);
  // A ResetAll between bench phases moves the counter backwards; the
  // series must rebaseline, not credit a negative or giant delta. Only
  // touched buckets are stored, so the rebaseline second has no cell.
  ts.SampleAt({{"c", 5}}, 3.0);
  ts.SampleAt({{"c", 12}}, 4.0);
  const std::vector<TimeSeriesPoint> points = ts.Snapshot();
  EXPECT_DOUBLE_EQ(DeltaOf(points, "c", 2), 50.0);
  EXPECT_DOUBLE_EQ(DeltaOf(points, "c", 3), -1.0);  // Absent, not stored.
  EXPECT_DOUBLE_EQ(DeltaOf(points, "c", 4), 7.0);
}

TEST(TimeSeriesTest, BucketsOlderThanTheWindowFallOff) {
  TimeSeries ts;
  ts.set_window_buckets(3);
  ts.SampleAt({{"c", 0}}, 1.0);
  ts.SampleAt({{"c", 10}}, 2.0);
  ts.SampleAt({{"c", 20}}, 3.0);
  ts.SampleAt({{"c", 30}}, 10.0);  // Buckets 2 and 3 age out.
  const std::vector<TimeSeriesPoint> points = ts.Snapshot();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].bucket, 10);
  EXPECT_DOUBLE_EQ(points[0].delta, 10.0);
  EXPECT_DOUBLE_EQ(points[0].window_total, 10.0);
}

TEST(TimeSeriesTest, PercentilesZeroFillGapBucketsAndOrderIsStable) {
  TimeSeries ts;
  ts.SampleAt({{"a", 0}, {"b", 0}}, 0.5);
  ts.SampleAt({{"a", 100}, {"b", 1}}, 1.5);
  ts.SampleAt({{"a", 101}, {"b", 2}}, 9.5);  // Seven idle seconds between.
  const std::vector<TimeSeriesPoint> points = ts.Snapshot();
  // Ordered by name then bucket: a@1, a@9, b@1, b@9. The idle seconds
  // between the stored buckets count as zero-rate in the percentiles.
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].name, "a");
  EXPECT_EQ(points[0].bucket, 1);
  EXPECT_EQ(points[1].name, "a");
  EXPECT_EQ(points[1].bucket, 9);
  EXPECT_EQ(points[2].name, "b");
  // "a" spiked 100 in one of nine buckets: the median second is idle.
  EXPECT_DOUBLE_EQ(points[0].rate_p50, 0.0);
  EXPECT_DOUBLE_EQ(points[0].rate_p99, 100.0);
  EXPECT_DOUBLE_EQ(points[0].window_total, 101.0);
}

TEST(TimeSeriesTest, ClearForgetsBaselinesAndBuckets) {
  TimeSeries ts;
  ts.SampleAt({{"c", 0}}, 1.0);
  ts.SampleAt({{"c", 10}}, 2.0);
  ts.Clear();
  EXPECT_TRUE(ts.Snapshot().empty());
  ts.SampleAt({{"c", 500}}, 3.0);  // Re-baselines; no 490-delta ghost.
  EXPECT_TRUE(ts.Snapshot().empty());
}

TEST(TraceExportTest, DroppedEventsSurviveTheJsonRoundTrip) {
  std::vector<obs::SpanEvent> events;
  obs::SpanEvent e;
  e.name = "execute \"q\"\n";  // Exercise escaping in the same pass.
  e.cat = "exec";
  e.ts_us = 12.5;
  e.dur_us = 100.25;
  e.tid = 3;
  e.args.emplace_back("query_id", "7");
  events.push_back(e);

  const std::string json = obs::ToChromeTraceJson(events, 42);
  auto parsed = obs::ParseChromeTraceFull(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->dropped_events, 42u);
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].name, e.name);
  EXPECT_EQ(parsed->events[0].tid, 3);
  ASSERT_EQ(parsed->events[0].args.size(), 1u);
  EXPECT_EQ(parsed->events[0].args[0].second, "7");
}

TEST(TraceExportTest, DefaultExportReportsZeroDropped) {
  auto parsed = obs::ParseChromeTraceFull(obs::ToChromeTraceJson({}));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->dropped_events, 0u);
  EXPECT_TRUE(parsed->events.empty());
}

TEST(TraceExportTest, TracerOverflowCountPropagatesThroughExport) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Clear();
  tracer.set_max_events(2);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    obs::Span span("test", "overflow");
  }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);

  const std::string json =
      obs::ToChromeTraceJson(tracer.Snapshot(), tracer.dropped());
  auto parsed = obs::ParseChromeTraceFull(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->dropped_events, 3u);

  tracer.set_max_events(1u << 20);
  tracer.Clear();
}

}  // namespace
}  // namespace ppp
