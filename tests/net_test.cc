// The network serving subsystem: wire framing, the admission queue's
// fairness/shed/timeout semantics (deterministically, no sockets), and the
// TCP server end to end — QUERY and PREPARE/EXECUTE over a socket, the
// ppp_connections system table, load shedding under a slow-UDF pile-up,
// and the graceful drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/function_registry.h"
#include "net/admission.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/query_log.h"
#include "serve/session.h"
#include "types/tuple.h"
#include "types/value.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

// ---------------------------------------------------------------------------
// Wire framing

TEST(WireTest, FrameRoundtripIncludingEmbeddedNuls) {
  net::FrameParser parser;
  const std::string payload = std::string("QUERY a\0b\0c", 11);
  const std::string wire = net::EncodeFrame(payload);
  std::vector<std::string> out;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], payload);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireTest, ByteAtATimeFeedReassembles) {
  net::FrameParser parser;
  const std::string wire =
      net::EncodeFrame("PING") + net::EncodeFrame("QUERY SELECT 1");
  std::vector<std::string> out;
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(&c, 1, &out).ok());
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "PING");
  EXPECT_EQ(out[1], "QUERY SELECT 1");
}

TEST(WireTest, OversizedDeclaredLengthPoisonsUntilReset) {
  net::FrameParser parser(/*max_frame_bytes=*/16);
  // 4-byte big-endian length 0x01000000 = 16 MiB, over the 16-byte limit.
  const char giant[4] = {0x01, 0x00, 0x00, 0x00};
  std::vector<std::string> out;
  EXPECT_FALSE(parser.Feed(giant, 4, &out).ok());
  EXPECT_TRUE(parser.poisoned());
  // Poisoned parsers reject everything, even well-formed frames.
  const std::string fine = net::EncodeFrame("PING");
  EXPECT_FALSE(parser.Feed(fine.data(), fine.size(), &out).ok());
  EXPECT_TRUE(out.empty());
  // Reset models a fresh connection: parsing works again.
  parser.Reset();
  ASSERT_TRUE(parser.Feed(fine.data(), fine.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "PING");
}

TEST(WireTest, TruncatedFrameStaysBuffered) {
  net::FrameParser parser;
  const std::string wire = net::EncodeFrame("QUERY SELECT 1");
  std::vector<std::string> out;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size() - 3, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_GT(parser.buffered(), 0u);
  ASSERT_TRUE(
      parser.Feed(wire.data() + wire.size() - 3, 3, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "QUERY SELECT 1");
}

TEST(WireTest, SchemaCodecRoundtrips) {
  std::vector<types::ColumnInfo> cols;
  cols.push_back({"t3", "a", types::TypeId::kInt64});
  cols.push_back({"t3", "ua", types::TypeId::kDouble});
  cols.push_back({"", "count()", types::TypeId::kInt64});
  const types::RowSchema schema(std::move(cols));
  const std::string text = net::EncodeSchema(schema);
  auto decoded = net::DecodeSchema(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->NumColumns(), 3u);
  EXPECT_EQ(decoded->Column(0).table, "t3");
  EXPECT_EQ(decoded->Column(0).name, "a");
  EXPECT_EQ(decoded->Column(1).type, types::TypeId::kDouble);
  EXPECT_EQ(decoded->Column(2).name, "count()");
  EXPECT_FALSE(net::DecodeSchema("no-colon-here").ok());
}

TEST(WireTest, RowPayloadRoundtrips) {
  types::Tuple tuple(std::vector<types::Value>{
      types::Value(int64_t{42}), types::Value(3.5),
      types::Value(std::string("x\0y", 3)), types::Value()});
  auto decoded = net::DecodeRowPayload(net::EncodeRowPayload(tuple));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->NumValues(), 4u);
  EXPECT_EQ(decoded->Get(0).AsInt64(), 42);
  EXPECT_EQ(decoded->Get(2).AsString(), std::string("x\0y", 3));
  EXPECT_FALSE(net::DecodeRowPayload("OK rows=0").ok());
}

TEST(WireTest, SplitVerbAndOkField) {
  std::string rest;
  EXPECT_EQ(net::SplitVerb("  query   SELECT 1", &rest), "QUERY");
  EXPECT_EQ(rest, "SELECT 1");
  EXPECT_EQ(net::SplitVerb("PING", &rest), "PING");
  EXPECT_EQ(rest, "");
  const std::string ok = "OK rows=3 cols=2 hit=1 schema=t3.a:INT64";
  EXPECT_EQ(net::OkField(ok, "rows"), "3");
  EXPECT_EQ(net::OkField(ok, "hit"), "1");
  EXPECT_EQ(net::OkField(ok, "schema"), "t3.a:INT64");
  EXPECT_EQ(net::OkField(ok, "absent"), "");
}

// ---------------------------------------------------------------------------
// Admission queue (no sockets, fully deterministic)

net::AdmissionQueue::Task Recorder(std::vector<int>* order, int tag) {
  return [order, tag](bool) { order->push_back(tag); };
}

TEST(AdmissionTest, RoundRobinAlternatesAcrossSessions) {
  net::AdmissionQueue::Options options;
  options.max_inflight = 1;
  options.queue_depth = 16;
  options.queue_timeout_seconds = 0;
  net::AdmissionQueue queue(options);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Enqueue(1, Recorder(&order, 1)));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Enqueue(2, Recorder(&order, 2)));
  }
  // One worker, immediate Finish: the dequeue order is the fairness order.
  for (int i = 0; i < 6; ++i) {
    auto ticket = queue.Dequeue();
    ASSERT_TRUE(ticket.has_value());
    EXPECT_FALSE(ticket->timed_out);
    ticket->task(false);
    queue.Finish(ticket->session_key);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(AdmissionTest, OneStatementInFlightPerSession) {
  net::AdmissionQueue::Options options;
  options.max_inflight = 4;
  options.queue_depth = 16;
  options.queue_timeout_seconds = 0;
  net::AdmissionQueue queue(options);
  std::vector<int> order;
  ASSERT_TRUE(queue.Enqueue(1, Recorder(&order, 11)));
  ASSERT_TRUE(queue.Enqueue(1, Recorder(&order, 12)));
  ASSERT_TRUE(queue.Enqueue(2, Recorder(&order, 21)));
  auto first = queue.Dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_key, 1u);
  // Session 1 is in flight, so its second statement must wait: the next
  // dequeue serves session 2 even though session 1 was queued first.
  auto second = queue.Dequeue();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_key, 2u);
  queue.Finish(1);
  auto third = queue.Dequeue();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->session_key, 1u);
  third->task(false);
  EXPECT_EQ(order, (std::vector<int>{12}));
}

TEST(AdmissionTest, ShedsWhenFullAndAfterShutdown) {
  net::AdmissionQueue::Options options;
  options.max_inflight = 1;
  options.queue_depth = 2;
  options.queue_timeout_seconds = 0;
  net::AdmissionQueue queue(options);
  EXPECT_TRUE(queue.Enqueue(1, [](bool) {}));
  EXPECT_TRUE(queue.Enqueue(1, [](bool) {}));
  EXPECT_FALSE(queue.Enqueue(1, [](bool) {}));  // Depth 2: shed.
  EXPECT_EQ(queue.total_shed(), 1u);
  queue.Shutdown();
  EXPECT_FALSE(queue.Enqueue(2, [](bool) {}));  // Draining: shed.
  // The two admitted tasks still drain.
  EXPECT_TRUE(queue.Dequeue().has_value());
  queue.Finish(1);
  EXPECT_TRUE(queue.Dequeue().has_value());
  queue.Finish(1);
  EXPECT_FALSE(queue.Dequeue().has_value());  // Drained: workers exit.
  EXPECT_EQ(queue.total_queued(), 2u);
  EXPECT_EQ(queue.total_shed(), 2u);
}

TEST(AdmissionTest, ExpiredStatementsComeBackTimedOut) {
  net::AdmissionQueue::Options options;
  options.max_inflight = 1;
  options.queue_depth = 4;
  options.queue_timeout_seconds = 0.05;
  net::AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Enqueue(1, [](bool) {}));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto ticket = queue.Dequeue();
  ASSERT_TRUE(ticket.has_value());
  EXPECT_TRUE(ticket->timed_out);
  EXPECT_GE(ticket->queue_wait_seconds, 0.05);
  EXPECT_EQ(queue.total_timeouts(), 1u);
  // A timed-out ticket never held an in-flight slot, so a fresh statement
  // runs without any Finish for the expired one.
  ASSERT_TRUE(queue.Enqueue(1, [](bool) {}));
  auto next = queue.Dequeue();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->timed_out);
}

// ---------------------------------------------------------------------------
// Server end to end

/// Blocking test client over the real wire protocol. Send() writes one
/// frame; ReadResponse() returns the payloads of the next response (zero
/// or more ROW frames plus the OK/ERR/METRICS terminal).
class TestClient {
 public:
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Send(const std::string& payload) {
    const std::string wire = net::EncodeFrame(payload);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  std::vector<std::string> ReadResponse() {
    std::vector<std::string> response;
    char buf[64 * 1024];
    for (;;) {
      while (!pending_.empty()) {
        std::string payload = std::move(pending_.front());
        pending_.erase(pending_.begin());
        const bool terminal = payload.rfind("OK", 0) == 0 ||
                              payload.rfind("ERR", 0) == 0 ||
                              payload.rfind("METRICS", 0) == 0;
        response.push_back(std::move(payload));
        if (terminal) return response;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return response;  // Connection closed mid-response.
      if (!parser_.Feed(buf, static_cast<size_t>(n), &pending_).ok()) {
        return response;
      }
    }
  }

  /// Raw bytes, bypassing framing (for protocol-violation tests).
  bool SendRaw(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

 private:
  int fd_ = -1;
  net::FrameParser parser_;
  std::vector<std::string> pending_;
};

std::string Terminal(const std::vector<std::string>& response) {
  return response.empty() ? std::string() : response.back();
}

std::vector<types::Tuple> DecodedRows(
    const std::vector<std::string>& response) {
  std::vector<types::Tuple> rows;
  for (const std::string& payload : response) {
    if (payload.rfind("ROW ", 0) != 0) continue;
    auto tuple = net::DecodeRowPayload(payload);
    EXPECT_TRUE(tuple.ok());
    if (tuple.ok()) rows.push_back(std::move(*tuple));
  }
  return rows;
}

class NetServerTest : public ::testing::Test {
 protected:
  static workload::Database* db() {
    static workload::Database* db = [] {
      auto* instance = new workload::Database();
      workload::BenchmarkConfig config;
      config.scale = 30;
      config.table_numbers = {1, 3};
      EXPECT_TRUE(workload::LoadBenchmarkDatabase(instance, config).ok());
      EXPECT_TRUE(workload::RegisterBenchmarkFunctions(instance).ok());
      // A slow, non-cacheable UDF: every evaluation really runs (no
      // predicate-cache skips), so invocation totals are exact, and the
      // ~1 ms sleep lets a pipelined burst out-pace the executor.
      catalog::FunctionDef def;
      def.name = "slowpass";
      def.cost_per_call = 100.0;
      def.selectivity = 1.0;
      def.return_type = types::TypeId::kBool;
      def.cacheable = false;
      def.impl = [](const std::vector<types::Value>&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return types::Value(true);
      };
      EXPECT_TRUE(
          instance->catalog().functions().Register(std::move(def)).ok());
      return instance;
    }();
    return db;
  }
};

TEST_F(NetServerTest, QueryOverSocketMatchesInProcessExecution) {
  serve::SessionManager manager(db());
  net::Server::Options options;
  options.workers = 2;
  net::Server server(db(), &manager, options);
  ASSERT_TRUE(server.Start().ok());

  const std::string sql = "SELECT t3.a, t3.ua FROM t3 WHERE t3.a < 20;";
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("QUERY " + sql));
  const auto response = client.ReadResponse();
  const std::string ok = Terminal(response);
  ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
  EXPECT_EQ(net::OkField(ok, "rows"), "20");

  auto schema = net::DecodeSchema(net::OkField(ok, "schema"));
  ASSERT_TRUE(schema.ok());
  const std::vector<types::Tuple> rows = DecodedRows(response);
  ASSERT_EQ(rows.size(), 20u);

  auto session = manager.CreateSession();
  auto direct = session->Execute(sql);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(workload::CanonicalResults(rows, *schema),
            workload::CanonicalResults(direct->rows, direct->schema));

  ASSERT_TRUE(client.Send("PING"));
  EXPECT_EQ(Terminal(client.ReadResponse()), "OK pong");
  ASSERT_TRUE(client.Send("CLOSE"));
  EXPECT_EQ(Terminal(client.ReadResponse()), "OK bye");
  server.Stop();
}

TEST_F(NetServerTest, PreparedStatementsHitTheFamilyCacheAcrossLiterals) {
  serve::SessionManager manager(db());
  net::Server::Options options;
  options.workers = 2;
  net::Server server(db(), &manager, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      "PREPARE bya AS SELECT t3.a FROM t3 WHERE t3.a < $1;"));
  std::string ok = Terminal(client.ReadResponse());
  ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
  EXPECT_EQ(net::OkField(ok, "prepared"), "bya");

  // First EXECUTE compiles (and plants the generic plan); every later
  // EXECUTE with a *different* literal must reuse it: hit=1 generic=1.
  ASSERT_TRUE(client.Send("EXECUTE bya(5);"));
  ok = Terminal(client.ReadResponse());
  ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
  EXPECT_EQ(net::OkField(ok, "rows"), "5");
  EXPECT_EQ(net::OkField(ok, "hit"), "0");
  for (int bound = 6; bound <= 10; ++bound) {
    ASSERT_TRUE(client.Send("EXECUTE bya(" + std::to_string(bound) + ");"));
    ok = Terminal(client.ReadResponse());
    ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
    EXPECT_EQ(net::OkField(ok, "rows"), std::to_string(bound));
    EXPECT_EQ(net::OkField(ok, "hit"), "1") << ok;
    EXPECT_EQ(net::OkField(ok, "generic"), "1") << ok;
  }
  EXPECT_GE(manager.plan_cache().family_hits(), 5u);
  ASSERT_TRUE(client.Send("CLOSE"));
  client.ReadResponse();
  server.Stop();
}

TEST_F(NetServerTest, ConnectionsTableAndMetricsFrame) {
  serve::SessionManager manager(db());
  net::Server server(db(), &manager, net::Server::Options{});
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("QUERY SELECT count(*) FROM ppp_connections;"));
  const auto response = client.ReadResponse();
  ASSERT_EQ(Terminal(response).rfind("OK", 0), 0u) << Terminal(response);
  const std::vector<types::Tuple> rows = DecodedRows(response);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0].Get(0).AsInt64(), 1);  // At least this connection.

  ASSERT_TRUE(client.Send("METRICS"));
  const std::string metrics = Terminal(client.ReadResponse());
  ASSERT_EQ(metrics.rfind("METRICS ", 0), 0u);
  EXPECT_NE(metrics.find("serve.net.connections"), std::string::npos);
  ASSERT_TRUE(client.Send("CLOSE"));
  client.ReadResponse();
  server.Stop();
}

TEST_F(NetServerTest, MalformedFrameDropsOnlyThatConnection) {
  serve::SessionManager manager(db());
  net::Server server(db(), &manager, net::Server::Options{});
  ASSERT_TRUE(server.Start().ok());

  TestClient bad;
  ASSERT_TRUE(bad.Connect(server.port()));
  // Declared length 0x40000001 exceeds the 4 MiB cap: the server answers
  // ERR and drops this connection.
  ASSERT_TRUE(bad.SendRaw(std::string("\x40\x00\x00\x01", 4)));
  const std::string err = Terminal(bad.ReadResponse());
  EXPECT_EQ(err.rfind("ERR", 0), 0u) << err;

  // The server survives: a fresh connection still serves queries.
  TestClient good;
  ASSERT_TRUE(good.Connect(server.port()));
  ASSERT_TRUE(good.Send("QUERY SELECT count(*) FROM t1;"));
  EXPECT_EQ(Terminal(good.ReadResponse()).rfind("OK", 0), 0u);
  ASSERT_TRUE(good.Send("CLOSE"));
  good.ReadResponse();
  server.Stop();
}

// The admission satellite: a slow-UDF pile-up against workers=1 and a
// depth-2 queue. Two interleaved connections pipeline 2x-queue-depth
// statements; the server must shed (never hang), serve both sessions, and
// after the drain the executed/shed split must account for every
// statement — with exact UDF invocation totals for the executed ones.
TEST_F(NetServerTest, SlowUdfPileUpShedsFairlyWithExactTotals) {
  obs::QueryLog::Global().Clear();
  serve::SessionManager manager(db());

  // Per-query UDF invocations, measured in-process: t1 has 30 rows and
  // slowpass is non-cacheable, so every statement costs exactly this many.
  uint64_t per_query = 0;
  {
    auto session = manager.CreateSession();
    auto r = session->Execute("SELECT count(*) FROM t1 WHERE slowpass(t1.a);");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const obs::QueryLogRecord& rec : obs::QueryLog::Global().Snapshot()) {
      per_query += rec.udf_invocations;
    }
    ASSERT_GT(per_query, 0u);
  }
  obs::QueryLog::Global().Clear();

  net::Server::Options options;
  options.workers = 1;
  options.queue_depth = 2;
  options.queue_timeout_seconds = 0;  // Shed, never time out, in this test.
  net::Server server(db(), &manager, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient a;
  TestClient b;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  const std::string sql = "QUERY SELECT count(*) FROM t1 WHERE slowpass(t1.a);";
  // Deterministic timeline against the ~90 ms statement (30 rows x 3 ms of
  // non-cacheable UDF sleep). The pauses order the enqueues; they are tiny
  // next to the statement runtime, so the worker is still inside the first
  // statement when the queue-filling and shed sends land.
  const auto pause = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  ASSERT_TRUE(a.Send(sql));  // Admitted and immediately running.
  pause();
  ASSERT_TRUE(b.Send(sql));  // Queued (the worker is busy): depth 1 of 2.
  pause();
  ASSERT_TRUE(a.Send(sql));  // Queued: depth 2 of 2, the queue is full.
  pause();
  ASSERT_TRUE(a.Send(sql));  // Shed.
  ASSERT_TRUE(b.Send(sql));  // Shed.
  ASSERT_TRUE(a.Send(sql));  // Shed.
  ASSERT_TRUE(b.Send(sql));  // Shed.
  int ok_count = 0;
  int shed_count = 0;
  const auto classify = [&](const std::string& terminal) {
    if (terminal.rfind("OK", 0) == 0) {
      ++ok_count;
    } else {
      ASSERT_NE(terminal.find("load shed"), std::string::npos) << terminal;
      ++shed_count;
    }
  };
  for (int i = 0; i < 4; ++i) classify(Terminal(a.ReadResponse()));
  for (int i = 0; i < 3; ++i) classify(Terminal(b.ReadResponse()));
  // Every statement was answered (no hangs): 3 executed, 4 shed — exactly.
  EXPECT_EQ(ok_count, 3);
  EXPECT_EQ(shed_count, 4);
  EXPECT_EQ(server.admission().total_shed(),
            static_cast<uint64_t>(shed_count));

  // Fair dequeue: both piled-up sessions got their statements through.
  std::set<uint64_t> sessions_served;
  uint64_t udf_total = 0;
  for (const obs::QueryLogRecord& rec : obs::QueryLog::Global().Snapshot()) {
    sessions_served.insert(rec.session_id);
    udf_total += rec.udf_invocations;
  }
  EXPECT_EQ(sessions_served.size(), 2u);
  // Exact accounting after the drain: executed statements did all their
  // UDF work, shed statements did none.
  EXPECT_EQ(udf_total, static_cast<uint64_t>(ok_count) * per_query);

  ASSERT_TRUE(a.Send("CLOSE"));
  a.ReadResponse();
  ASSERT_TRUE(b.Send("CLOSE"));
  b.ReadResponse();
  server.Stop();
}

TEST_F(NetServerTest, ShutdownFrameDrainsInFlightStatements) {
  serve::SessionManager manager(db());
  net::Server::Options options;
  options.workers = 1;
  options.queue_depth = 8;
  net::Server server(db(), &manager, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Pipeline two slow statements, then SHUTDOWN: both were admitted before
  // the drain began, so both must still be answered with full results.
  const std::string sql = "QUERY SELECT count(*) FROM t1 WHERE slowpass(t1.a);";
  ASSERT_TRUE(client.Send(sql));
  ASSERT_TRUE(client.Send(sql));
  ASSERT_TRUE(client.Send("SHUTDOWN"));
  int oks = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string terminal = Terminal(client.ReadResponse());
    if (terminal.rfind("OK", 0) == 0) ++oks;
  }
  EXPECT_EQ(oks, 3);  // Two statement OKs + "OK draining".
  server.Wait();
  // After the drain, new connections are refused (the listener is gone).
  TestClient late;
  EXPECT_FALSE(late.Connect(server.port()));
}

}  // namespace
}  // namespace ppp
