#include <gtest/gtest.h>

#include "parser/binder.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    config_.scale = 300;
    config_.table_numbers = {1, 3, 9, 10};
    EXPECT_TRUE(LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(RegisterBenchmarkFunctions(&db_).ok());
  }

  Database db_;
  BenchmarkConfig config_;
};

TEST_F(WorkloadTest, TablesHaveScaledCardinalities) {
  for (const int k : config_.table_numbers) {
    auto table = db_.catalog().GetTable("t" + std::to_string(k));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->NumTuples(), k * config_.scale);
  }
}

TEST_F(WorkloadTest, TuplesAreAbout100Bytes) {
  auto table = db_.catalog().GetTable("t10");
  ASSERT_TRUE(table.ok());
  const double width = static_cast<double>((*table)->NumPages()) *
                       storage::kPageSize /
                       static_cast<double>((*table)->NumTuples());
  EXPECT_GT(width, 90);
  EXPECT_LT(width, 130);
}

TEST_F(WorkloadTest, IndexConventionFollowsNames) {
  auto table = db_.catalog().GetTable("t3");
  ASSERT_TRUE(table.ok());
  for (const char* indexed : {"a", "a1", "a10", "a20"}) {
    EXPECT_TRUE((*table)->HasIndex(indexed)) << indexed;
  }
  for (const char* unindexed : {"ua", "ua1", "u10", "u100", "pad"}) {
    EXPECT_FALSE((*table)->HasIndex(unindexed)) << unindexed;
  }
}

TEST_F(WorkloadTest, DuplicationFactorsMatchNames) {
  auto table = db_.catalog().GetTable("t10");
  ASSERT_TRUE(table.ok());
  const int64_t n = (*table)->NumTuples();
  // `a` and `ua` are exactly unique.
  EXPECT_EQ((*table)->GetColumnStats("a").num_distinct, n);
  EXPECT_EQ((*table)->GetColumnStats("ua").num_distinct, n);
  // `ua1` ~ uniform draws from [0, 0.9 n): distinct ≈ 0.9(1 - e^{-1/0.9}) n.
  const double ua1 =
      static_cast<double>((*table)->GetColumnStats("ua1").num_distinct);
  EXPECT_NEAR(ua1 / static_cast<double>(n), 0.604, 0.03);
  // `u10`: domain n/10, nearly all values hit.
  const double u10 =
      static_cast<double>((*table)->GetColumnStats("u10").num_distinct);
  EXPECT_NEAR(u10 / (static_cast<double>(n) / 10.0), 1.0, 0.02);
}

TEST_F(WorkloadTest, PaperPropertyT9HasMoreValuesThanT10Ua1) {
  // The linchpin of Q2 (§4.2): d(t9.ua) > d(t10.ua1) while
  // d(t3.ua) < d(t10.ua1).
  auto t3 = db_.catalog().GetTable("t3");
  auto t9 = db_.catalog().GetTable("t9");
  auto t10 = db_.catalog().GetTable("t10");
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(t9.ok());
  ASSERT_TRUE(t10.ok());
  const int64_t t10_ua1 = (*t10)->GetColumnStats("ua1").num_distinct;
  EXPECT_GT((*t9)->GetColumnStats("ua").num_distinct, t10_ua1);
  EXPECT_LT((*t3)->GetColumnStats("ua").num_distinct, t10_ua1);
}

TEST_F(WorkloadTest, GenerationIsDeterministic) {
  Database other;
  ASSERT_TRUE(LoadBenchmarkDatabase(&other, config_).ok());
  auto a = db_.catalog().GetTable("t3");
  auto b = other.catalog().GetTable("t3");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->GetColumnStats("ua1").num_distinct,
            (*b)->GetColumnStats("ua1").num_distinct);
}

TEST_F(WorkloadTest, BenchmarkFunctionsRegistered) {
  const auto& fns = db_.catalog().functions();
  for (const char* name :
       {"costly1", "costly10", "costly100", "costly1000", "match100"}) {
    EXPECT_TRUE(fns.Contains(name)) << name;
  }
  EXPECT_DOUBLE_EQ((*fns.Lookup("costly100"))->cost_per_call, 100);
}

TEST_F(WorkloadTest, AllQueriesBindAgainstFullDatabase) {
  Database full;
  BenchmarkConfig config;
  config.scale = 100;
  ASSERT_TRUE(LoadBenchmarkDatabase(&full, config).ok());
  ASSERT_TRUE(RegisterBenchmarkFunctions(&full).ok());
  for (const BenchmarkQuery& q : BenchmarkQueries(config)) {
    auto spec = GetBenchmarkQuery(full, config, q.id);
    EXPECT_TRUE(spec.ok()) << q.id << ": " << spec.status();
  }
  EXPECT_FALSE(GetBenchmarkQuery(full, config, "Q99").ok());
}

TEST_F(WorkloadTest, ChargedTimeCombinesIoAndUdf) {
  exec::ExecStats stats;
  stats.io.sequential_reads = 100;
  stats.io.random_reads = 50;
  stats.invocations["costly100"] = 7;
  cost::CostParams params;
  double io = 0;
  double udf = 0;
  const double total = ChargedTime(stats, db_.catalog().functions(), params,
                                   &io, &udf);
  EXPECT_DOUBLE_EQ(io, 150);
  EXPECT_DOUBLE_EQ(udf, 700);
  EXPECT_DOUBLE_EQ(total, 850);
}

TEST_F(WorkloadTest, UnknownFunctionInStatsIsIgnored) {
  exec::ExecStats stats;
  stats.invocations["not_registered"] = 100;
  const double total =
      ChargedTime(stats, db_.catalog().functions(), {}, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(total, 0);
}

TEST_F(WorkloadTest, CanonicalResultsSortsAndSerializes) {
  using types::Tuple;
  using types::Value;
  std::vector<Tuple> rows = {Tuple({Value(int64_t{2})}),
                             Tuple({Value(int64_t{1})})};
  const std::vector<std::string> canon = CanonicalResults(rows);
  ASSERT_EQ(canon.size(), 2u);
  EXPECT_LE(canon[0], canon[1]);
}

TEST_F(WorkloadTest, RunWithAlgorithmProducesMeasurement) {
  auto spec = GetBenchmarkQuery(db_, config_, "Q1");
  ASSERT_TRUE(spec.ok());
  auto m = RunWithAlgorithm(&db_, *spec, optimizer::Algorithm::kPushDown,
                            {}, {});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_GT(m->charged_time, 0);
  EXPECT_GT(m->est_cost, 0);
  EXPECT_FALSE(m->plan_text.empty());
  EXPECT_GT(m->invocations.at("costly100"), 0u);
}

TEST_F(WorkloadTest, OptimizeOnlySkipsExecution) {
  auto spec = GetBenchmarkQuery(db_, config_, "Q1");
  ASSERT_TRUE(spec.ok());
  auto m = RunWithAlgorithm(&db_, *spec, optimizer::Algorithm::kMigration,
                            {}, {}, /*execute=*/false);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->charged_time, 0);
  EXPECT_GT(m->est_cost, 0);
}

}  // namespace
}  // namespace ppp::workload
