#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppp::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10.0);
  g.Add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExactPercentilesOverOneToHundred) {
  Histogram h;
  // Insert out of order; percentiles are over the sorted samples.
  for (int i = 100; i >= 1; --i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Nearest-rank over N=100: p maps straight to the p-th sample.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, EmptyAndSingleSample) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 7.0);
}

TEST(HistogramTest, BelowCapKeepsEverySample) {
  Histogram h;
  const size_t n = Histogram::kSampleCap;
  for (size_t i = 1; i <= n; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), n);
  EXPECT_FALSE(h.samples_capped());
  // With every sample retained, percentiles are exact nearest-rank.
  EXPECT_DOUBLE_EQ(h.Percentile(50), static_cast<double>(n / 2));
  EXPECT_DOUBLE_EQ(h.Percentile(100), static_cast<double>(n));
}

TEST(HistogramTest, PastCapScalarsStayExact) {
  Histogram h;
  const size_t n = 3 * Histogram::kSampleCap;
  double sum = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    h.Observe(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  // count/sum/min/max come from exact scalars, not the reservoir.
  EXPECT_EQ(h.count(), n);
  EXPECT_TRUE(h.samples_capped());
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(n));
}

TEST(HistogramTest, ReservoirPercentilesApproximatePastCap) {
  Histogram h;
  // Uniform 1..N with N = 8 * cap: the reservoir is a uniform sample, so
  // nearest-rank percentiles over it should land near the true values.
  // The xorshift stream is seeded deterministically, so this is stable.
  const size_t n = 8 * Histogram::kSampleCap;
  for (size_t i = 1; i <= n; ++i) h.Observe(static_cast<double>(i));
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  EXPECT_NEAR(p50 / static_cast<double>(n), 0.5, 0.05);
  EXPECT_NEAR(p90 / static_cast<double>(n), 0.9, 0.05);
  EXPECT_GE(h.Percentile(0), 1.0);
  EXPECT_LE(h.Percentile(100), static_cast<double>(n));
}

TEST(HistogramTest, CappedFlagSurfacesInSnapshotTextAndJson) {
  MetricsRegistry registry;
  Histogram* small = registry.GetHistogram("test.small");
  small->Observe(1.0);
  Histogram* big = registry.GetHistogram("test.big");
  for (size_t i = 0; i < Histogram::kSampleCap + 1; ++i) big->Observe(1.0);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_FALSE(snap.histograms.at("test.small").samples_capped);
  EXPECT_TRUE(snap.histograms.at("test.big").samples_capped);
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.big"), std::string::npos);
  EXPECT_NE(text.find("samples_capped=1"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"samples_capped\": true"), std::string::npos);
  EXPECT_NE(json.find("\"samples_capped\": false"), std::string::npos);
}

TEST(HistogramTest, ResetClearsCapState) {
  Histogram h;
  for (size_t i = 0; i < Histogram::kSampleCap + 10; ++i) h.Observe(2.0);
  ASSERT_TRUE(h.samples_capped());
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_FALSE(h.samples_capped());
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

TEST(MetricsRegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("test.hits");
  Gauge* depth = registry.GetGauge("test.depth");
  Histogram* lat = registry.GetHistogram("test.latency");
  hits->Increment(3);
  depth->Set(4.0);
  lat->Observe(1.0);
  lat->Observe(2.0);
  // Creating more metrics must not invalidate earlier pointers.
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("test.other" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("test.hits"), hits);
  hits->Increment();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.hits"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.depth"), 4.0);
  EXPECT_EQ(snap.histograms.at("test.latency").count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("test.latency").sum, 3.0);

  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.hits 4"), std::string::npos);
  EXPECT_NE(text.find("test.latency count=2"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.hits\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.count");
  c->Increment(9);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  // The same pointer keeps working after a reset.
  c->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("test.count"), 1u);
}

TEST(ScopedTimerTest, ObservesOneSample) {
  Histogram h;
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(OptTraceTest, AddFindAndDepth) {
  OptTrace trace;
  EXPECT_TRUE(trace.empty());
  trace.Add("dp.prune", "t1 x t3", {12.5});
  trace.Push("migration", "stream t10");
  trace.Add("migration.move", "costly100 up", {0.5});
  trace.Pop();
  trace.Add("dp.prune", "t3 x t10", {7.0});
  ASSERT_EQ(trace.entries().size(), 4u);
  EXPECT_EQ(trace.entries()[2].depth, 1);
  EXPECT_EQ(trace.entries()[3].depth, 0);

  const auto prunes = trace.Find("dp.prune");
  ASSERT_EQ(prunes.size(), 2u);
  EXPECT_EQ(prunes[0]->detail, "t1 x t3");
  EXPECT_DOUBLE_EQ(prunes[1]->values[0], 7.0);
  EXPECT_TRUE(trace.Find("nope").empty());
}

TEST(OptTraceTest, TextAndJsonDumps) {
  OptTrace trace;
  trace.Push("outer", "scope");
  trace.Add("inner", "say \"hi\"", {1.0, 2.0});
  trace.Pop();
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
  // The nested entry is indented further than its parent.
  EXPECT_LT(text.find("outer"), text.find("inner"));
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"label\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);

  trace.Clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace ppp::obs
