#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::storage {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 64), tree_(&pool_) {}
  DiskManager disk_;
  BufferPool pool_;
  BTree tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_TRUE(tree_.empty());
  EXPECT_EQ(tree_.Height(), 0);
  EXPECT_TRUE(tree_.Lookup(5).empty());
  EXPECT_TRUE(tree_.LookupRange(0, 100).empty());
}

TEST_F(BTreeTest, SingleInsertLookup) {
  tree_.Insert(42, {7, 3});
  const std::vector<RecordId> hits = tree_.Lookup(42);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (RecordId{7, 3}));
  EXPECT_TRUE(tree_.Lookup(41).empty());
  EXPECT_EQ(tree_.Height(), 1);
}

TEST_F(BTreeTest, DuplicateKeysAllReturnedInRidOrder) {
  tree_.Insert(5, {30, 0});
  tree_.Insert(5, {10, 0});
  tree_.Insert(5, {20, 0});
  const std::vector<RecordId> hits = tree_.Lookup(5);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].page_id, 10u);
  EXPECT_EQ(hits[1].page_id, 20u);
  EXPECT_EQ(hits[2].page_id, 30u);
}

TEST_F(BTreeTest, RangeLookupInclusive) {
  for (int64_t k = 0; k < 20; ++k) {
    tree_.Insert(k, {static_cast<PageId>(k), 0});
  }
  const std::vector<RecordId> hits = tree_.LookupRange(5, 8);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits.front().page_id, 5u);
  EXPECT_EQ(hits.back().page_id, 8u);
  EXPECT_TRUE(tree_.LookupRange(8, 5).empty());  // Inverted range.
}

TEST_F(BTreeTest, NegativeKeys) {
  tree_.Insert(-10, {1, 0});
  tree_.Insert(0, {2, 0});
  tree_.Insert(10, {3, 0});
  EXPECT_EQ(tree_.Lookup(-10).size(), 1u);
  const std::vector<RecordId> hits = tree_.LookupRange(-100, 0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  // A leaf holds ~254 entries; 10 000 inserts force internal splits.
  for (int64_t i = 0; i < 10000; ++i) {
    tree_.Insert(i, {static_cast<PageId>(i), 0});
  }
  EXPECT_GE(tree_.Height(), 2);
  EXPECT_EQ(tree_.NumEntries(), 10000u);
  // Every key still findable.
  for (int64_t i = 0; i < 10000; i += 97) {
    ASSERT_EQ(tree_.Lookup(i).size(), 1u) << "key " << i;
  }
  // Full range scan is complete and ordered.
  const std::vector<RecordId> all = tree_.LookupRange(0, 9999);
  ASSERT_EQ(all.size(), 10000u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].page_id, all[i].page_id);
  }
}

TEST_F(BTreeTest, DescendingInsertOrder) {
  for (int64_t i = 999; i >= 0; --i) {
    tree_.Insert(i, {static_cast<PageId>(i), 0});
  }
  for (int64_t i = 0; i < 1000; i += 13) {
    ASSERT_EQ(tree_.Lookup(i).size(), 1u);
  }
}

TEST_F(BTreeTest, HeavyDuplicatesSpanLeaves) {
  // 1000 entries of the same key span several leaves.
  for (uint32_t i = 0; i < 1000; ++i) {
    tree_.Insert(7, {i, 0});
  }
  tree_.Insert(6, {0, 0});
  tree_.Insert(8, {0, 0});
  EXPECT_EQ(tree_.Lookup(7).size(), 1000u);
  EXPECT_EQ(tree_.Lookup(6).size(), 1u);
  EXPECT_EQ(tree_.Lookup(8).size(), 1u);
}

/// Property test: the B-tree agrees with a reference std::multimap under
/// random workloads of varying size and key skew.
class BTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimap) {
  const int inserts = std::get<0>(GetParam());
  const int64_t key_range = std::get<1>(GetParam());

  DiskManager disk;
  BufferPool pool(&disk, 64);
  BTree tree(&pool);
  std::multimap<int64_t, uint64_t> reference;
  common::Random rng(static_cast<uint64_t>(inserts) * 31 +
                     static_cast<uint64_t>(key_range));

  for (int i = 0; i < inserts; ++i) {
    const int64_t key =
        rng.NextInt64(-key_range, key_range);
    const RecordId rid{static_cast<PageId>(i), 0};
    tree.Insert(key, rid);
    reference.emplace(key, rid.Pack());
  }

  // Point lookups agree on 50 probe keys.
  for (int probe = 0; probe < 50; ++probe) {
    const int64_t key = rng.NextInt64(-key_range, key_range);
    const auto [lo, hi] = reference.equal_range(key);
    const size_t expected = static_cast<size_t>(std::distance(lo, hi));
    ASSERT_EQ(tree.Lookup(key).size(), expected) << "key " << key;
  }

  // A handful of range scans agree in size and ordering.
  for (int probe = 0; probe < 10; ++probe) {
    int64_t a = rng.NextInt64(-key_range, key_range);
    int64_t b = rng.NextInt64(-key_range, key_range);
    if (a > b) std::swap(a, b);
    const size_t expected = static_cast<size_t>(std::distance(
        reference.lower_bound(a), reference.upper_bound(b)));
    ASSERT_EQ(tree.LookupRange(a, b).size(), expected)
        << "range [" << a << "," << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BTreePropertyTest,
    ::testing::Combine(::testing::Values(100, 1000, 5000),
                       ::testing::Values<int64_t>(10, 1000, 1000000)));

TEST(BTreeIoTest, LookupsCostFewPages) {
  DiskManager disk;
  BufferPool pool(&disk, 512);
  BTree tree(&pool);
  for (int64_t i = 0; i < 50000; ++i) {
    tree.Insert(i, {static_cast<PageId>(i), 0});
  }
  pool.EvictAll();
  pool.ResetStats();
  tree.Lookup(25000);
  // One descent: height pages (~3), all cold.
  EXPECT_LE(pool.stats().TotalReads(), 4u);
  EXPECT_GE(pool.stats().TotalReads(), 2u);
}

}  // namespace
}  // namespace ppp::storage
