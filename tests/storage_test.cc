#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace ppp::storage {
namespace {

TEST(DiskManagerTest, AllocateAndRoundTrip) {
  DiskManager disk;
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  Page page;
  page.bytes()[0] = 0xAB;
  disk.WritePage(a, page);
  Page read;
  disk.ReadPage(a, &read);
  EXPECT_EQ(read.bytes()[0], 0xAB);
  disk.ReadPage(b, &read);
  EXPECT_EQ(read.bytes()[0], 0);  // Fresh page is zeroed.
}

TEST(BufferPoolTest, HitDoesNotReRead) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  Page* page = nullptr;
  const PageId id = pool.NewPage(&page);
  pool.UnpinPage(id, true);
  pool.FlushAll();

  EXPECT_EQ(pool.stats().TotalReads(), 0u);
  pool.FetchPage(id);
  pool.UnpinPage(id, false);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);  // Still resident.
  EXPECT_EQ(pool.stats().TotalReads(), 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  Page* p = nullptr;
  const PageId a = pool.NewPage(&p);
  p->bytes()[0] = 0x42;
  pool.UnpinPage(a, true);

  // Fill the pool so `a` is evicted.
  for (int i = 0; i < 3; ++i) {
    Page* q = nullptr;
    const PageId id = pool.NewPage(&q);
    pool.UnpinPage(id, false);
  }
  Page read;
  disk.ReadPage(a, &read);
  EXPECT_EQ(read.bytes()[0], 0x42);

  // Re-fetch is a miss now.
  const uint64_t reads_before = pool.stats().TotalReads();
  Page* back = pool.FetchPage(a);
  EXPECT_EQ(back->bytes()[0], 0x42);
  pool.UnpinPage(a, false);
  EXPECT_EQ(pool.stats().TotalReads(), reads_before + 1);
}

TEST(BufferPoolTest, SequentialVsRandomClassification) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) {
    Page* p = nullptr;
    ids.push_back(pool.NewPage(&p));
    pool.UnpinPage(ids.back(), false);
  }
  pool.EvictAll();
  pool.ResetStats();

  // Forward scan: first read random, rest sequential.
  for (const PageId id : ids) {
    pool.FetchPage(id);
    pool.UnpinPage(id, false);
  }
  EXPECT_EQ(pool.stats().random_reads, 1u);
  EXPECT_EQ(pool.stats().sequential_reads, 9u);

  pool.EvictAll();
  pool.ResetStats();
  // Backward scan: all random.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    pool.FetchPage(*it);
    pool.UnpinPage(*it, false);
  }
  EXPECT_EQ(pool.stats().random_reads, 10u);
  EXPECT_EQ(pool.stats().sequential_reads, 0u);
}

TEST(BufferPoolTest, EvictAllSkipsPinnedPages) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  Page* p = nullptr;
  const PageId pinned = pool.NewPage(&p);
  Page* q = nullptr;
  const PageId unpinned = pool.NewPage(&q);
  pool.UnpinPage(unpinned, false);

  pool.EvictAll();
  pool.ResetStats();
  pool.FetchPage(pinned);  // Still resident: hit.
  EXPECT_EQ(pool.stats().buffer_hits, 1u);
  pool.FetchPage(unpinned);  // Evicted: miss.
  EXPECT_EQ(pool.stats().TotalReads(), 1u);
  pool.UnpinPage(pinned, false);
  pool.UnpinPage(pinned, false);
  pool.UnpinPage(unpinned, false);
}

TEST(PageGuardTest, UnpinsOnScopeExit) {
  DiskManager disk;
  BufferPool pool(&disk, 1);  // One frame: a leaked pin would deadlock.
  Page* p = nullptr;
  const PageId a = pool.NewPage(&p);
  pool.UnpinPage(a, true);
  {
    PageGuard guard(&pool, a);
    guard.MarkDirty();
  }
  // The single frame must be reusable now.
  Page* q = nullptr;
  const PageId b = pool.NewPage(&q);
  pool.UnpinPage(b, false);
  SUCCEED();
}

TEST(RecordIdTest, PackUnpackRoundTrip) {
  RecordId rid{123456, 789};
  EXPECT_EQ(RecordId::Unpack(rid.Pack()), rid);
  RecordId zero{0, 0};
  EXPECT_EQ(RecordId::Unpack(zero.Pack()), zero);
}

TEST(RecordIdTest, Ordering) {
  EXPECT_LT((RecordId{1, 5}), (RecordId{2, 0}));
  EXPECT_LT((RecordId{1, 5}), (RecordId{1, 6}));
  EXPECT_FALSE((RecordId{1, 5}) < (RecordId{1, 5}));
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_, 16), file_(&pool_) {}
  DiskManager disk_;
  BufferPool pool_;
  HeapFile file_;
};

TEST_F(HeapFileTest, InsertAndRead) {
  auto rid = file_.Insert("hello");
  ASSERT_TRUE(rid.ok());
  auto back = file_.Read(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello");
}

TEST_F(HeapFileTest, ManyRecordsSpillAcrossPages) {
  const std::string record(100, 'r');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(file_.Insert(record + std::to_string(i)).ok());
  }
  EXPECT_EQ(file_.NumRecords(), 1000u);
  EXPECT_GT(file_.NumPages(), 20u);  // ~38 records of ~104 bytes per page.

  // Scan returns every record in insertion order.
  HeapFile::Iterator it = file_.Scan();
  RecordId rid;
  std::string bytes;
  int count = 0;
  while (it.Next(&rid, &bytes)) {
    EXPECT_EQ(bytes, record + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 1000);
}

TEST_F(HeapFileTest, ReadBadSlotFails) {
  ASSERT_TRUE(file_.Insert("x").ok());
  EXPECT_FALSE(file_.Read({0, 99}).ok());
}

TEST_F(HeapFileTest, OversizedRecordRejected) {
  EXPECT_FALSE(file_.Insert(std::string(5000, 'x')).ok());
}

TEST_F(HeapFileTest, MaxSizedRecordFits) {
  // Page minus header minus one slot.
  EXPECT_TRUE(file_.Insert(std::string(4088, 'x')).ok());
  EXPECT_EQ(file_.NumPages(), 1u);
}

TEST_F(HeapFileTest, EmptyRecordsSupported) {
  auto rid = file_.Insert("");
  ASSERT_TRUE(rid.ok());
  auto back = file_.Read(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "");
}

TEST_F(HeapFileTest, ScanOfEmptyFile) {
  HeapFile::Iterator it = file_.Scan();
  RecordId rid;
  std::string bytes;
  EXPECT_FALSE(it.Next(&rid, &bytes));
}

TEST_F(HeapFileTest, NextViewMatchesCopyingScanAcrossPages) {
  const std::string record(100, 'r');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(file_.Insert(record + std::to_string(i)).ok());
  }
  HeapFile::Iterator it = file_.Scan();
  RecordId rid;
  std::string_view view;
  int count = 0;
  while (it.NextView(&rid, &view)) {
    // The view stays valid until the next NextView() call.
    EXPECT_EQ(view, record + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 1000);
}

TEST_F(HeapFileTest, NextViewFetchesOncePerPage) {
  const std::string record(100, 'r');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file_.Insert(record).ok());
  }
  pool_.ResetStats();
  HeapFile::Iterator it = file_.Scan();
  RecordId rid;
  std::string_view view;
  while (it.NextView(&rid, &view)) {
  }
  // One pin per page, not per record.
  EXPECT_EQ(pool_.stats().buffer_hits + pool_.stats().TotalReads(),
            file_.NumPages());
}

TEST_F(HeapFileTest, MovedIteratorKeepsPositionAndRepins) {
  const std::string record(100, 'r');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file_.Insert(record + std::to_string(i)).ok());
  }
  HeapFile::Iterator it = file_.Scan();
  RecordId rid;
  std::string_view view;
  ASSERT_TRUE(it.NextView(&rid, &view));
  HeapFile::Iterator moved = std::move(it);
  ASSERT_TRUE(moved.NextView(&rid, &view));
  EXPECT_EQ(view, record + "1");
}

}  // namespace
}  // namespace ppp::storage
