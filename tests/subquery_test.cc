// Correlated-subquery tests, built around the paper's §5.1 example:
//
//   SELECT name, gpa FROM student
//   WHERE student.mother IN
//     (SELECT name FROM professor WHERE professor.dept = student.dept);
//
// The subquery is rewritten into an expensive predicate whose cache is
// keyed on (student.mother, student.dept) — exactly the paper's hash table.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "subquery/rewrite.h"
#include "workload/measurement.h"

namespace ppp::subquery {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

class SubqueryTest : public ::testing::Test {
 protected:
  SubqueryTest() : pool_(&disk_, 256), catalog_(&pool_) {
    // student(id, name_code, mother_code, dept, gpa): 300 students over
    // 10 departments; mother codes in [0, 100).
    auto student = catalog_.CreateTable(
        "student", {{"id", TypeId::kInt64},
                    {"name_code", TypeId::kInt64},
                    {"mother", TypeId::kInt64},
                    {"dept", TypeId::kInt64},
                    {"gpa", TypeId::kInt64}});
    // professor(name_code, dept): 50 professors; names in [0, 100).
    auto professor = catalog_.CreateTable(
        "professor",
        {{"name", TypeId::kInt64}, {"dept", TypeId::kInt64}});
    EXPECT_TRUE(student.ok());
    EXPECT_TRUE(professor.ok());
    for (int64_t i = 0; i < 300; ++i) {
      EXPECT_TRUE((*student)
                      ->Insert(Tuple({Value(i), Value(i % 97),
                                      Value((i * 7) % 100), Value(i % 10),
                                      Value(i % 4)}))
                      .ok());
    }
    for (int64_t i = 0; i < 50; ++i) {
      EXPECT_TRUE((*professor)
                      ->Insert(Tuple({Value((i * 3) % 100), Value(i % 10)}))
                      .ok());
    }
    EXPECT_TRUE((*student)->Analyze().ok());
    EXPECT_TRUE((*professor)->Analyze().ok());
  }

  /// Reference evaluation of the paper's query, straight from the data.
  std::set<int64_t> ExpectedStudentIds() {
    std::set<std::pair<int64_t, int64_t>> prof;  // (name, dept).
    for (int64_t i = 0; i < 50; ++i) {
      prof.insert({(i * 3) % 100, i % 10});
    }
    std::set<int64_t> out;
    for (int64_t i = 0; i < 300; ++i) {
      const int64_t mother = (i * 7) % 100;
      const int64_t dept = i % 10;
      if (prof.count({mother, dept}) > 0) out.insert(i);
    }
    return out;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

constexpr char kPaperQuery[] =
    "SELECT student.id FROM student WHERE student.mother IN "
    "(SELECT name FROM professor WHERE professor.dept = student.dept)";

TEST_F(SubqueryTest, ParsesAndBinds) {
  auto spec = parser::ParseAndBind(kPaperQuery, catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->conjuncts.size(), 1u);
  EXPECT_EQ(spec->conjuncts[0]->kind, expr::ExprKind::kInSubquery);
  // The needle and the correlated ref resolve to the outer table.
  EXPECT_EQ(spec->conjuncts[0]->children[0]->table, "student");
}

TEST_F(SubqueryTest, CollectTablesSeesCorrelationOnly) {
  auto spec = parser::ParseAndBind(kPaperQuery, catalog_);
  ASSERT_TRUE(spec.ok());
  // The IN predicate references only `student` from the outer query's
  // point of view (professor is internal).
  EXPECT_EQ(spec->conjuncts[0]->ReferencedTables(),
            (std::set<std::string>{"student"}));
}

TEST_F(SubqueryTest, RewriteSynthesizesExpensiveFunction) {
  auto spec = ParseBindRewrite(kPaperQuery, &catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->conjuncts.size(), 1u);
  const expr::Expr& pred = *spec->conjuncts[0];
  ASSERT_EQ(pred.kind, expr::ExprKind::kFunctionCall);
  // Args: needle (student.mother) + correlation (student.dept).
  ASSERT_EQ(pred.children.size(), 2u);
  EXPECT_EQ(pred.children[0]->column, "mother");
  EXPECT_EQ(pred.children[1]->column, "dept");

  auto def = catalog_.functions().Lookup(pred.function_name);
  ASSERT_TRUE(def.ok());
  EXPECT_GT((*def)->cost_per_call, 0);  // Estimated subquery cost.
  EXPECT_TRUE((*def)->cacheable);
  EXPECT_FALSE((*def)->charge_invocations);
}

TEST_F(SubqueryTest, ExecutesCorrectly) {
  auto spec = ParseBindRewrite(kPaperQuery, &catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();

  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(result.ok()) << result.status();

  exec::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.binding = {{"student", *catalog_.GetTable("student")}};
  auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr);
  ASSERT_TRUE(rows.ok()) << rows.status();

  std::set<int64_t> got;
  for (const types::Tuple& row : *rows) got.insert(row.Get(0).AsInt64());
  EXPECT_EQ(got, ExpectedStudentIds());
  EXPECT_FALSE(got.empty());  // The fixture guarantees matches.
}

TEST_F(SubqueryTest, PredicateCacheKeyedOnOuterBindings) {
  auto spec = ParseBindRewrite(kPaperQuery, &catalog_);
  ASSERT_TRUE(spec.ok());
  const std::string fn = spec->conjuncts[0]->function_name;

  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kPushDown);
  ASSERT_TRUE(result.ok());

  exec::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.params.predicate_caching = true;
  ctx.binding = {{"student", *catalog_.GetTable("student")}};
  exec::ExecStats stats;
  ASSERT_TRUE(exec::ExecutePlan(*result->plan, &ctx, &stats).ok());
  // (mother, dept) over this data has at most 300 combinations but the
  // cache must deduplicate repeats; the invocation count equals the number
  // of distinct bindings, which is < 300 here.
  ASSERT_GT(stats.invocations.at(fn), 0u);
  EXPECT_LT(stats.invocations.at(fn), 300u);
}

TEST_F(SubqueryTest, UncorrelatedSubquery) {
  auto spec = ParseBindRewrite(
      "SELECT student.id FROM student WHERE student.dept IN "
      "(SELECT dept FROM professor WHERE professor.name < 10)",
      &catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  const expr::Expr& pred = *spec->conjuncts[0];
  ASSERT_EQ(pred.kind, expr::ExprKind::kFunctionCall);
  EXPECT_EQ(pred.children.size(), 1u);  // Needle only, no correlation.

  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(result.ok());
  exec::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.binding = {{"student", *catalog_.GetTable("student")}};
  exec::ExecStats stats;
  auto rows = exec::ExecutePlan(*result->plan, &ctx, &stats);
  ASSERT_TRUE(rows.ok());
  // Uncorrelated: a single binding, so exactly the distinct needle values
  // trigger evaluation; the subquery itself runs once per distinct needle
  // thanks to the value-set memo keyed on the (empty) binding.
  EXPECT_GT(rows->size(), 0u);
}

TEST_F(SubqueryTest, SubqueryPlacementRespondsToCost) {
  // Join the student table against itself so there is a join to place the
  // expensive IN predicate around.
  const std::string sql =
      "SELECT a.id FROM student a, student b WHERE a.id = b.mother "
      "AND a.mother IN (SELECT name FROM professor WHERE "
      "professor.dept = a.dept)";
  auto spec = ParseBindRewrite(sql, &catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();

  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(result.ok()) << result.status();
  // The subquery predicate must appear exactly once in the plan.
  int filters = 0;
  std::vector<const plan::PlanNode*> stack = {result->plan.get()};
  while (!stack.empty()) {
    const plan::PlanNode* node = stack.back();
    stack.pop_back();
    if (node->kind == plan::PlanKind::kFilter &&
        node->predicate.is_expensive()) {
      ++filters;
    }
    for (const plan::PlanPtr& child : node->children) {
      stack.push_back(child.get());
    }
  }
  EXPECT_EQ(filters, 1);
}

TEST_F(SubqueryTest, InRequiresParenthesizedSelect) {
  EXPECT_FALSE(parser::ParseSelect(
                   "SELECT * FROM student WHERE mother IN professor")
                   .ok());
  EXPECT_FALSE(parser::ParseSelect(
                   "SELECT * FROM student WHERE mother IN (1, 2, 3)")
                   .ok());
}

TEST_F(SubqueryTest, BindRejectsUnknownInnerTable) {
  EXPECT_FALSE(parser::ParseAndBind(
                   "SELECT * FROM student WHERE mother IN "
                   "(SELECT name FROM nonexistent)",
                   catalog_)
                   .ok());
}

TEST_F(SubqueryTest, ExecutingUnrewrittenSubqueryFails) {
  auto spec = parser::ParseAndBind(kPaperQuery, catalog_);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kPushDown);
  // Either optimization or execution must fail cleanly (no crash): the
  // evaluator refuses unrewritten IN nodes.
  if (result.ok()) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.binding = {{"student", *catalog_.GetTable("student")}};
    EXPECT_FALSE(exec::ExecutePlan(*result->plan, &ctx, nullptr).ok());
  }
}

}  // namespace
}  // namespace ppp::subquery
