// Predicate-transfer correctness and effectiveness: a hash join's
// build-side Bloom filter pre-filters the probe-side scan, starving
// expensive predicates of doomed tuples. Transfer must never change query
// results — at any worker count — and must cut UDF invocations roughly in
// proportion to the join selectivity. The kill switch must disable a
// filter that prunes nothing, again without changing results.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using exec::ExecParams;
using exec::ExecStats;
using expr::Call;
using expr::Col;
using expr::Eq;
using optimizer::Algorithm;
using types::Tuple;
using types::TypeId;
using types::Value;

/// Handcrafted two-table plans: r (200 rows, unique key) hash-joined with a
/// selective s (25 keys, all present in r), with an expensive predicate on
/// the probe side between scan and join.
class TransferExecTest : public ::testing::Test {
 protected:
  TransferExecTest() : pool_(&disk_, 64), catalog_(&pool_) {
    MakeTable("r", 200);
    MakeTable("s", 25);     // Selective build side: 25 of r's 200 keys.
    MakeTable("big", 200);  // Non-selective build side: every r key.
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.5)
            .ok());
    binding_ = {{"r", *catalog_.GetTable("r")},
                {"s", *catalog_.GetTable("s")},
                {"big", *catalog_.GetTable("big")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
  }

  void MakeTable(const std::string& name, int64_t rows) {
    auto table = catalog_.CreateTable(
        name, {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE((*table)->Insert(Tuple({Value(i), Value(i % 10)})).ok());
    }
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  /// HashJoin(Filter(costly(r.key)) over SeqScan(r), SeqScan(build_side))
  /// on r.key = build.key — the transfer target shape: expensive predicate
  /// on the probe side below the join.
  plan::PlanPtr ProbeSideUdfPlan(const std::string& build_side) {
    return plan::MakeJoin(
        plan::JoinMethod::kHash,
        plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                         Analyze(Call("costly", {Col("r", "key")}))),
        plan::MakeSeqScan(build_side, build_side),
        Analyze(Eq(Col("r", "key"), Col(build_side, "key"))));
  }

  std::vector<Tuple> Run(const plan::PlanNode& plan, const ExecParams& params,
                         ExecStats* stats,
                         std::unique_ptr<exec::Operator>* root = nullptr) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.binding = binding_;
    ctx.params = params;
    auto rows = exec::ExecutePlan(plan, &ctx, stats, nullptr, root);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return std::move(rows).value();
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
};

std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  for (const Tuple& t : rows) out.push_back(t.Serialize());
  std::sort(out.begin(), out.end());
  return out;
}

TEST_F(TransferExecTest, StarvesProbeSideUdfOfDoomedTuples) {
  plan::PlanPtr plan = ProbeSideUdfPlan("s");

  ExecParams off;
  off.predicate_caching = false;
  ExecStats off_stats;
  const std::vector<Tuple> off_rows = Run(*plan, off, &off_stats);
  EXPECT_EQ(off_stats.invocations.at("costly"), 200u);

  ExecParams on = off;
  on.predicate_transfer = true;
  ExecStats on_stats;
  std::unique_ptr<exec::Operator> root;
  const std::vector<Tuple> on_rows = Run(*plan, on, &on_stats, &root);

  // Identical results; UDF invocations cut from 200 toward the 25
  // join-surviving keys (filter FPs may add a few).
  EXPECT_EQ(Canon(on_rows), Canon(off_rows));
  EXPECT_LE(on_stats.invocations.at("costly"), 60u);
  EXPECT_GE(on_stats.invocations.at("costly"), 12u);

  // The probe-side scan reports transfer counters for EXPLAIN ANALYZE.
  ASSERT_NE(root, nullptr);
  const exec::Operator* scan = root->Children()[0]->Children()[0];
  const exec::OperatorStats& scan_stats = scan->stats();
  EXPECT_TRUE(scan_stats.has_transfer);
  EXPECT_EQ(scan_stats.transfer_probed, 200u);
  EXPECT_EQ(scan_stats.transfer_passed,
            on_stats.invocations.at("costly"));
  EXPECT_FALSE(scan_stats.transfer_killed);
}

TEST_F(TransferExecTest, ResultsIdenticalAcrossWorkers) {
  plan::PlanPtr plan = ProbeSideUdfPlan("s");
  ExecParams reference_params;
  ExecStats reference_stats;
  const auto reference = Canon(Run(*plan, reference_params, &reference_stats));
  for (const size_t workers : {size_t{1}, size_t{4}}) {
    ExecParams params;
    params.predicate_transfer = true;
    params.parallel_workers = workers;
    ExecStats stats;
    EXPECT_EQ(Canon(Run(*plan, params, &stats)), reference)
        << "workers=" << workers;
  }
  // Counters agree exactly between worker counts (pruning and caching are
  // both deterministic).
  ExecParams w1;
  w1.predicate_transfer = true;
  ExecParams w4 = w1;
  w4.parallel_workers = 4;
  ExecStats s1;
  ExecStats s4;
  Run(*plan, w1, &s1);
  Run(*plan, w4, &s4);
  EXPECT_EQ(s1.invocations, s4.invocations);
}

TEST_F(TransferExecTest, KillSwitchDisablesUselessFilter) {
  // Build side `big` contains every r key: the filter passes everything,
  // so after transfer_min_probes rows the kill switch must fire.
  plan::PlanPtr plan = ProbeSideUdfPlan("big");

  ExecParams off;
  ExecStats off_stats;
  const auto reference = Canon(Run(*plan, off, &off_stats));

  ExecParams on;
  on.predicate_transfer = true;
  on.transfer_min_probes = 50;
  ExecStats on_stats;
  std::unique_ptr<exec::Operator> root;
  const auto rows = Canon(Run(*plan, on, &on_stats, &root));
  EXPECT_EQ(rows, reference);
  // Nothing was prunable, so the UDF bill is unchanged.
  EXPECT_EQ(on_stats.invocations.at("costly"),
            off_stats.invocations.at("costly"));

  const exec::Operator* scan = root->Children()[0]->Children()[0];
  EXPECT_TRUE(scan->stats().has_transfer);
  EXPECT_TRUE(scan->stats().transfer_killed);
  // Probing stopped at (or shortly after) the kill.
  EXPECT_LT(scan->stats().transfer_probed, 200u);
}

TEST_F(TransferExecTest, TransferStatsReachProfiler) {
  obs::PredicateProfiler::Global().Reset();
  plan::PlanPtr plan = ProbeSideUdfPlan("s");
  ExecParams on;
  on.predicate_transfer = true;
  ExecStats stats;
  Run(*plan, on, &stats);
  const auto transfers = obs::PredicateProfiler::Global().TransferSnapshot();
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].site, "r.key <- s.key");
  EXPECT_EQ(transfers[0].queries, 1u);
  EXPECT_EQ(transfers[0].probed, 200u);
  EXPECT_LT(transfers[0].PassRate(), 0.5);
  obs::PredicateProfiler::Global().Reset();
}

TEST_F(TransferExecTest, ExpensiveJoinPrimaryNeverTransfers) {
  // A hash join requires a cheap simple equi-join, so this plan fails to
  // execute either way; the gate in BuildExecutor must simply not create a
  // transfer (covered by the is_expensive() condition) — here we assert
  // the cheap-equijoin gate via the cost model's TransferApplies.
  cost::CostParams params;
  params.predicate_transfer = true;
  cost::CostModel model(&catalog_, binding_, params);
  plan::PlanPtr hash = ProbeSideUdfPlan("s");
  EXPECT_TRUE(model.TransferApplies(*hash));
  plan::PlanPtr merge = plan::MakeJoin(
      plan::JoinMethod::kMerge, plan::MakeSeqScan("r", "r"),
      plan::MakeSeqScan("s", "s"),
      Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  EXPECT_FALSE(model.TransferApplies(*merge));
  params.predicate_transfer = false;
  cost::CostModel off(&catalog_, binding_, params);
  EXPECT_FALSE(off.TransferApplies(*hash));
}

/// Benchmark queries Q1–Q5 with transfer on/off at workers 1 and 4: the
/// full optimizer+executor pipeline must return identical results, and
/// transfer may only ever lower per-function invocation counts.
class TransferBenchmarkTest : public ::testing::Test {
 protected:
  struct RunOutcome {
    std::vector<std::string> rows;
    std::map<std::string, uint64_t> invocations;
  };

  TransferBenchmarkTest() {
    config_.scale = 150;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  /// Optimizes `id` once with `cost_params`, executes under `params`.
  RunOutcome Execute(const std::string& id, const cost::CostParams& cost_params,
                     const ExecParams& params) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    optimizer::Optimizer opt(&db_.catalog(), cost_params);
    auto result = opt.Optimize(*spec, Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params = params;
    for (const plan::TableRef& ref : spec->tables) {
      ctx.binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    ExecStats stats;
    types::RowSchema schema;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, &stats, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    RunOutcome out;
    out.rows = workload::CanonicalResults(*rows, schema);
    out.invocations = {stats.invocations.begin(), stats.invocations.end()};
    return out;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(TransferBenchmarkTest, TransferNeverChangesResults) {
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    const cost::CostParams cost_off;
    ExecParams off;
    const RunOutcome reference = Execute(id, cost_off, off);
    EXPECT_FALSE(reference.rows.empty()) << id;

    for (const size_t workers : {size_t{1}, size_t{4}}) {
      ExecParams on;
      on.predicate_transfer = true;
      on.parallel_workers = workers;
      const RunOutcome outcome = Execute(id, cost_off, on);
      EXPECT_EQ(outcome.rows, reference.rows)
          << id << " workers=" << workers;
      // Transfer can only starve UDFs, never add calls.
      for (const auto& [fn, count] : outcome.invocations) {
        auto it = reference.invocations.find(fn);
        ASSERT_NE(it, reference.invocations.end()) << id << " " << fn;
        EXPECT_LE(count, it->second) << id << " " << fn;
      }
    }
  }
}

TEST_F(TransferBenchmarkTest, TransferCountersIdenticalAcrossWorkers) {
  for (const char* id : {"Q2", "Q4"}) {
    const cost::CostParams cost_off;
    ExecParams w1;
    w1.predicate_transfer = true;
    ExecParams w4 = w1;
    w4.parallel_workers = 4;
    const RunOutcome a = Execute(id, cost_off, w1);
    const RunOutcome b = Execute(id, cost_off, w4);
    EXPECT_EQ(a.rows, b.rows) << id;
    EXPECT_EQ(a.invocations, b.invocations) << id;
  }
}

TEST_F(TransferBenchmarkTest, TransferAwareOptimizerStaysCorrect) {
  // With the cost model told about transfer (post-transfer cardinalities),
  // plans may change — results must not. ExecParamsFor keeps the executor
  // in lockstep with the model.
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    const cost::CostParams cost_off;
    const RunOutcome reference = Execute(id, cost_off, ExecParams{});

    cost::CostParams cost_on;
    cost_on.predicate_transfer = true;
    const ExecParams exec_on = workload::ExecParamsFor(cost_on);
    EXPECT_TRUE(exec_on.predicate_transfer);
    EXPECT_EQ(Execute(id, cost_on, exec_on).rows, reference.rows) << id;
  }
}

}  // namespace
}  // namespace ppp
