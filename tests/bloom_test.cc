// Unit tests for the register-blocked Bloom filter and the BloomTransfer
// handoff: block layout, no false negatives, measured FPR within 2x the
// saturation-based estimate, batch/scalar probe equivalence, single
// publication, and the runtime kill switch.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "exec/bloom_filter.h"

namespace ppp::exec {
namespace {

std::vector<uint64_t> RandomHashes(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(rng());
  return out;
}

TEST(BloomFilterTest, BlockLayoutIsOneCacheLine) {
  EXPECT_EQ(BloomFilter::kWordsPerBlock, 8u);
  EXPECT_EQ(BloomFilter::kBitsPerBlock, 512u);
  for (const size_t keys : {1u, 100u, 5000u, 100000u}) {
    BloomFilter filter(keys);
    EXPECT_TRUE(std::has_single_bit(filter.num_blocks())) << keys;
    EXPECT_EQ(filter.num_bits(),
              filter.num_blocks() * BloomFilter::kBitsPerBlock);
    // ~16 bits per key before power-of-two rounding, so never less than
    // 8 bits per key after rounding down is impossible (we round up).
    EXPECT_GE(filter.num_bits(), keys * 16u) << keys;
  }
}

TEST(BloomFilterTest, NoFalseNegatives) {
  const std::vector<uint64_t> keys = RandomHashes(20000, /*seed=*/1);
  BloomFilter filter(keys.size());
  for (const uint64_t h : keys) filter.InsertHash(h);
  for (const uint64_t h : keys) {
    ASSERT_TRUE(filter.MightContainHash(h));
  }
}

TEST(BloomFilterTest, EachKeySetsAtMostEightBits) {
  BloomFilter filter(1000);
  EXPECT_EQ(filter.BitsSet(), 0u);
  uint64_t previous = 0;
  for (const uint64_t h : RandomHashes(100, /*seed=*/2)) {
    filter.InsertHash(h);
    const uint64_t now = filter.BitsSet();
    EXPECT_LE(now - previous, 8u);
    previous = now;
  }
}

TEST(BloomFilterTest, MeasuredFprWithinTwiceTheoretical) {
  const size_t n = 50000;
  const std::vector<uint64_t> keys = RandomHashes(n, /*seed=*/3);
  BloomFilter filter(n);
  for (const uint64_t h : keys) filter.InsertHash(h);

  // Theoretical FPR of a Bloom filter with k=8 at this load; the blocked
  // layout is slightly worse (bits concentrate per block), the test allows
  // 2x.
  const double bits = static_cast<double>(filter.num_bits());
  const double theoretical =
      std::pow(1.0 - std::exp(-8.0 * static_cast<double>(n) / bits), 8.0);

  const std::vector<uint64_t> absent = RandomHashes(200000, /*seed=*/999);
  size_t false_positives = 0;
  for (const uint64_t h : absent) {
    if (filter.MightContainHash(h)) ++false_positives;
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(absent.size());
  EXPECT_LE(measured, 2.0 * theoretical + 1e-4)
      << "measured=" << measured << " theoretical=" << theoretical;
  // The saturation-based estimate must be in the same ballpark.
  EXPECT_LE(measured, 2.0 * filter.EstimatedFpr() + 1e-4);
}

TEST(BloomFilterTest, BatchProbeMatchesScalar) {
  const std::vector<uint64_t> keys = RandomHashes(5000, /*seed=*/4);
  BloomFilter filter(keys.size());
  for (size_t i = 0; i < keys.size(); i += 2) filter.InsertHash(keys[i]);

  const std::vector<uint64_t> probes = RandomHashes(10000, /*seed=*/5);
  std::vector<uint64_t> mixed = probes;
  mixed.insert(mixed.end(), keys.begin(), keys.end());

  std::vector<char> keep;
  const size_t kept = filter.ProbeBatch(mixed.data(), mixed.size(), &keep);
  ASSERT_EQ(keep.size(), mixed.size());
  size_t scalar_kept = 0;
  for (size_t i = 0; i < mixed.size(); ++i) {
    const bool scalar = filter.MightContainHash(mixed[i]);
    EXPECT_EQ(static_cast<bool>(keep[i]), scalar) << i;
    if (scalar) ++scalar_kept;
  }
  EXPECT_EQ(kept, scalar_kept);
}

TEST(BloomTransferTest, UnpublishedPassesEverything) {
  BloomTransfer transfer("r", "key", "s", "key");
  EXPECT_EQ(transfer.ActiveFilter(), nullptr);
  EXPECT_FALSE(transfer.published());
  EXPECT_EQ(transfer.Site(), "r.key <- s.key");
}

TEST(BloomTransferTest, PublishesExactlyOnce) {
  BloomTransfer transfer("r", "key", "s", "key");
  auto first = std::make_unique<BloomFilter>(10);
  first->InsertHash(42);
  const BloomFilter* raw = first.get();
  transfer.Publish(std::move(first));
  EXPECT_EQ(transfer.ActiveFilter(), raw);
  // A rescan re-publishing is ignored: the original filter stays.
  transfer.Publish(std::make_unique<BloomFilter>(10));
  EXPECT_EQ(transfer.ActiveFilter(), raw);
}

TEST(BloomTransferTest, KillSwitchFiresOnUselessFilter) {
  BloomTransfer transfer("r", "key", "s", "key");
  transfer.min_probes = 100;
  transfer.kill_pass_rate = 0.95;
  transfer.Publish(std::make_unique<BloomFilter>(10));
  ASSERT_NE(transfer.ActiveFilter(), nullptr);

  // Below min_probes nothing happens even at 100% pass.
  transfer.RecordProbes(50, 50);
  EXPECT_NE(transfer.ActiveFilter(), nullptr);
  EXPECT_FALSE(transfer.killed());

  // Crossing min_probes with pass rate above the threshold kills it.
  transfer.RecordProbes(60, 60);
  EXPECT_TRUE(transfer.killed());
  EXPECT_EQ(transfer.ActiveFilter(), nullptr);
}

TEST(BloomTransferTest, SelectiveFilterSurvives) {
  BloomTransfer transfer("r", "key", "s", "key");
  transfer.min_probes = 100;
  transfer.kill_pass_rate = 0.95;
  transfer.Publish(std::make_unique<BloomFilter>(10));
  transfer.RecordProbes(1000, 400);  // 40% pass rate: pruning plenty.
  EXPECT_FALSE(transfer.killed());
  ASSERT_NE(transfer.ActiveFilter(), nullptr);
  EXPECT_EQ(transfer.probed(), 1000u);
  EXPECT_EQ(transfer.passed(), 400u);
  EXPECT_EQ(transfer.pruned(), 600u);
}

TEST(BloomTransferTest, MeasuredFprFromJoinMissFeedback) {
  BloomTransfer transfer("r", "key", "s", "key");
  transfer.Publish(std::make_unique<BloomFilter>(10));
  EXPECT_LT(transfer.MeasuredFpr(), 0.0);  // No negatives observed yet.
  transfer.RecordProbes(1000, 100);  // 900 pruned.
  for (int i = 0; i < 100; ++i) transfer.RecordJoinMiss();
  // 100 false positives out of 900 + 100 = 1000 negatives.
  EXPECT_DOUBLE_EQ(transfer.MeasuredFpr(), 0.1);
}

}  // namespace
}  // namespace ppp::exec
