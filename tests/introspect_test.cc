// End-to-end introspection: the ppp_* system tables are ordinary relations
// to the parser, binder, optimizer, and executor. Plain SELECTs with
// predicates, aggregates, and joins must work against them, ANALYZE and DML
// must be rejected, and every executed query must leave a ppp_query_log
// record whose counters reflect that execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/plan_history.h"
#include "obs/query_log.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "stats/collector.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp {
namespace {

using types::Tuple;
using types::TypeId;
using types::Value;

const char* const kSystemTables[] = {
    "ppp_query_log", "ppp_metrics", "ppp_metrics_window", "ppp_spans",
    "ppp_table_stats", "ppp_operator_audit", "ppp_plan_history",
};

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest() : pool_(&disk_, 128), catalog_(&pool_) {
    // The backing stores are process globals; start each test clean.
    obs::QueryLog::Global().Clear();
    obs::QueryLog::Global().set_enabled(true);
    obs::PlanAudit::Global().Clear();
    obs::PlanAudit::Global().set_enabled(true);
    obs::PlanHistory::Global().Clear();
    obs::PlanHistory::Global().set_enabled(true);
    obs::TimeSeries::Global().Clear();
    obs::SpanTracer::Global().set_enabled(false);
    obs::SpanTracer::Global().Clear();

    auto table = catalog_.CreateTable(
        "t", {{"grp", TypeId::kInt64}, {"val", TypeId::kInt64}});
    EXPECT_TRUE(table.ok());
    for (int64_t i = 0; i < 50; ++i) {
      EXPECT_TRUE((*table)->Insert(Tuple({Value(i % 4), Value(i)})).ok());
    }
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("pricey", 10, 0.5)
            .ok());
  }

  ~IntrospectTest() override {
    obs::QueryLog::Global().Clear();
    obs::PlanAudit::Global().Clear();
    obs::PlanHistory::Global().Clear();
    obs::SpanTracer::Global().set_enabled(false);
    obs::SpanTracer::Global().Clear();
  }

  std::vector<Tuple> Run(const std::string& sql, uint64_t text_hash = 0) {
    auto spec = parser::ParseAndBind(sql, catalog_);
    EXPECT_TRUE(spec.ok()) << sql << ": " << spec.status();
    if (!spec.ok()) return {};
    optimizer::Optimizer opt(&catalog_, {});
    auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    if (!result.ok()) return {};
    exec::ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.log_hints.algorithm = "migration";
    ctx.log_hints.text_hash = text_hash;
    for (const plan::TableRef& ref : spec->tables) {
      ctx.binding[ref.alias] = *catalog_.GetTable(ref.table_name);
    }
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr);
    EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status();
    return rows.ok() ? std::move(rows).value() : std::vector<Tuple>{};
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(IntrospectTest, CountStarWorksOnEverySystemTable) {
  for (const char* name : kSystemTables) {
    const std::vector<Tuple> rows =
        Run(std::string("SELECT count(*) FROM ") + name);
    ASSERT_EQ(rows.size(), 1u) << name;
    EXPECT_GE(rows[0].Get(0).AsInt64(), 0) << name;
  }
}

TEST_F(IntrospectTest, ExecutedQueriesAppearInTheQueryLog) {
  Run("SELECT count(*) FROM t WHERE t.val < 10");
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_query_log.query_id, ppp_query_log.rows_out, "
      "ppp_query_log.stats_tier FROM ppp_query_log "
      "WHERE ppp_query_log.algorithm = 'migration'");
  ASSERT_GE(rows.size(), 1u);
  // The first logged query returned one aggregate row off 50 scanned.
  EXPECT_GT(rows[0].Get(0).AsInt64(), 0);
  EXPECT_EQ(rows[0].Get(1).AsInt64(), 1);
  EXPECT_EQ(rows[0].Get(2).AsString(), "declared");
}

TEST_F(IntrospectTest, QueryLogCountersReflectTheExecution) {
  Run("SELECT t.val FROM t WHERE pricey(t.val)");
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_query_log.udf_invocations, ppp_query_log.rows_in "
      "FROM ppp_query_log WHERE ppp_query_log.udf_invocations > 0");
  ASSERT_EQ(rows.size(), 1u);
  // The expensive predicate ran at least once; leaf rows_out is
  // post-filter when placement pushes the predicate into the scan, so it
  // is bounded by the table, not equal to it.
  EXPECT_GT(rows[0].Get(0).AsInt64(), 0);
  EXPECT_GT(rows[0].Get(1).AsInt64(), 0);
  EXPECT_LE(rows[0].Get(1).AsInt64(), 50);
}

TEST_F(IntrospectTest, ExecutedOperatorsAppearInTheAuditTable) {
  Run("SELECT t.val FROM t WHERE pricey(t.val)");
  // Every executed operator left one audit row; the scan's UDF bill is
  // attributed to the node that ran the predicate.
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_operator_audit.path, ppp_operator_audit.op, "
      "ppp_operator_audit.actual_rows, ppp_operator_audit.udf_invocations "
      "FROM ppp_operator_audit "
      "WHERE ppp_operator_audit.udf_invocations > 0");
  ASSERT_GE(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsString().substr(0, 1), "0");  // Root-anchored.
  EXPECT_GT(rows[0].Get(3).AsInt64(), 0);
}

TEST_F(IntrospectTest, RepeatedQueriesAggregateInThePlanHistory) {
  const uint64_t hash = 0xabcdef12u;
  Run("SELECT count(*) FROM t", hash);
  Run("SELECT count(*) FROM t", hash);
  // One plan, two executions; the same-fingerprint rerun is no change.
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_plan_history.executions, ppp_plan_history.plan_changed, "
      "ppp_plan_history.regressed FROM ppp_plan_history");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 2);
  EXPECT_EQ(rows[0].Get(1).AsInt64(), 0);
  EXPECT_EQ(rows[0].Get(2).AsInt64(), 0);
  // The query log exposes the same verdicts per execution.
  const std::vector<Tuple> log = Run(
      "SELECT count(*) FROM ppp_query_log "
      "WHERE ppp_query_log.plan_changed = 0");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0].Get(0).AsInt64(), 2);
}

TEST_F(IntrospectTest, AggregatesAndPredicatesComposeOverTheLog) {
  for (int i = 0; i < 3; ++i) Run("SELECT count(*) FROM t");
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_query_log.algorithm, count(*), "
      "sum(ppp_query_log.wall_seconds) FROM ppp_query_log "
      "WHERE ppp_query_log.rows_out >= 0 "
      "GROUP BY ppp_query_log.algorithm");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsString(), "migration");
  // 3 loads plus the introspection queries run before this one.
  EXPECT_GE(rows[0].Get(1).AsInt64(), 3);
  EXPECT_GE(rows[0].Get(2).AsDouble(), 0.0);
}

TEST_F(IntrospectTest, SelfJoinSeesOneConsistentSnapshot) {
  for (int i = 0; i < 4; ++i) Run("SELECT count(*) FROM t");
  // Both sides materialize the same log contents: the record of the join
  // query itself is only appended at close, after the scans opened.
  const std::vector<Tuple> diag = Run("SELECT count(*) FROM ppp_query_log");
  ASSERT_EQ(diag.size(), 1u);
  const int64_t n = diag[0].Get(0).AsInt64();
  const std::vector<Tuple> rows = Run(
      "SELECT count(*) FROM ppp_query_log a, ppp_query_log b "
      "WHERE a.query_id = b.query_id");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), n + 1);  // +1: the count query above.
}

TEST_F(IntrospectTest, MetricsTableExposesCountersWithStringPredicates) {
  Run("SELECT count(*) FROM t");  // Touches exec counters.
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_metrics.name, ppp_metrics.value FROM ppp_metrics "
      "WHERE ppp_metrics.kind = 'counter'");
  ASSERT_GE(rows.size(), 1u);
  bool saw_batches = false;
  for (const Tuple& row : rows) {
    if (row.Get(0).AsString() == "exec.batches") saw_batches = true;
  }
  EXPECT_TRUE(saw_batches);
}

TEST_F(IntrospectTest, QueryLogJoinsMetricsWindowOnBucket) {
  // Two queries a sample apart give the window at least one credited
  // delta; the join itself must plan and execute like any equi-join.
  Run("SELECT count(*) FROM t");
  Run("SELECT count(*) FROM t WHERE t.val < 25");
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_query_log.query_id, ppp_metrics_window.name "
      "FROM ppp_query_log, ppp_metrics_window "
      "WHERE ppp_query_log.bucket = ppp_metrics_window.bucket");
  // Row count is timing-dependent (1 s buckets); the contract under test
  // is that the join binds, plans, and runs.
  EXPECT_GE(rows.size(), 0u);
}

TEST_F(IntrospectTest, SpansTableCarriesTheQueryId) {
  obs::SpanTracer::Global().set_enabled(true);
  Run("SELECT count(*) FROM t");
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_spans.name, ppp_spans.query_id FROM ppp_spans "
      "WHERE ppp_spans.query_id > 0");
  obs::SpanTracer::Global().set_enabled(false);
  ASSERT_GE(rows.size(), 1u);
}

TEST_F(IntrospectTest, TableStatsTableReflectsAnalyzedColumns) {
  EXPECT_TRUE(
      stats::AnalyzeTable(*catalog_.GetTable("t"), {}).ok());
  const std::vector<Tuple> rows = Run(
      "SELECT ppp_table_stats.column_name, ppp_table_stats.row_count "
      "FROM ppp_table_stats WHERE ppp_table_stats.table_name = 't'");
  ASSERT_EQ(rows.size(), 2u);  // grp and val.
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get(1).AsInt64(), 50);
  }
}

TEST_F(IntrospectTest, ExpensivePredicatePlacementIsNormalOnSystemTables) {
  auto spec = parser::ParseAndBind(
      "SELECT ppp_query_log.query_id FROM ppp_query_log "
      "WHERE pricey(ppp_query_log.query_id) AND ppp_query_log.rows_out >= 0",
      catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  optimizer::Optimizer opt(&catalog_, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string plan = result->plan->ToString();
  EXPECT_NE(plan.find("ppp_query_log"), std::string::npos) << plan;
  EXPECT_NE(plan.find("pricey"), std::string::npos) << plan;
}

TEST_F(IntrospectTest, SystemTablesRejectDdlDmlAndAnalyze) {
  // CREATE TABLE may not squat on the system prefix.
  auto created = catalog_.CreateTable("ppp_mine", {{"a", TypeId::kInt64}});
  EXPECT_FALSE(created.ok());

  catalog::Table* log_table = *catalog_.GetTable("ppp_query_log");
  EXPECT_FALSE(log_table->Insert(Tuple({Value(int64_t{1})})).ok());
  EXPECT_FALSE(log_table->Analyze().ok());
  EXPECT_FALSE(stats::AnalyzeTable(log_table, {}).ok());
  EXPECT_EQ(log_table->collected_stats(), nullptr);

  // ANALYZE-all walks base tables only, so it stays green.
  EXPECT_TRUE(stats::AnalyzeAll(&catalog_, {}).ok());
  const std::vector<std::string> names = catalog_.TableNames();
  EXPECT_EQ(std::count_if(names.begin(), names.end(),
                          [](const std::string& n) {
                            return n.rfind("ppp_", 0) == 0;
                          }),
            0);
}

TEST_F(IntrospectTest, SystemTableNamesListsAllSorted) {
  const std::vector<std::string> names = catalog_.SystemTableNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name : kSystemTables) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST_F(IntrospectTest, DisablingTheLogStopsRecordsNotQueries) {
  obs::QueryLog::Global().set_enabled(false);
  Run("SELECT count(*) FROM t");
  EXPECT_EQ(obs::QueryLog::Global().size(), 0u);
  obs::QueryLog::Global().set_enabled(true);
  const std::vector<Tuple> rows = Run("SELECT count(*) FROM ppp_query_log");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 0);  // Snapshot taken before close.
}

}  // namespace
}  // namespace ppp
