// End-to-end reproduction checks: every placement algorithm must produce
// the same answers, and the per-query performance shapes of the paper's
// Figures 3-9 must hold at test scale. This mirrors the paper's own
// debugging methodology (§5): "running the same query under the various
// different optimization heuristics, and comparing the estimated costs and
// running times of the resulting plans."

#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using optimizer::Algorithm;

const Algorithm kAllAlgorithms[] = {
    Algorithm::kPushDown, Algorithm::kPullUp,     Algorithm::kPullRank,
    Algorithm::kMigration, Algorithm::kLdl,       Algorithm::kExhaustive,
};

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    config_.scale = 300;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  plan::QuerySpec Query(const std::string& id) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    return *spec;
  }

  /// Executes the plan chosen by `algorithm` and returns its canonical
  /// result set.
  std::vector<std::string> ResultsOf(const plan::QuerySpec& spec,
                                     Algorithm algorithm,
                                     bool caching = true) {
    cost::CostParams cost_params;
    cost_params.predicate_caching = caching;
    optimizer::Optimizer opt(&db_.catalog(), cost_params);
    auto result = opt.Optimize(spec, algorithm);
    EXPECT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params.predicate_caching = caching;
    for (const plan::TableRef& ref : spec.tables) {
      ctx.binding[ref.alias] = *db_.catalog().GetTable(ref.table_name);
    }
    types::RowSchema schema;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return workload::CanonicalResults(*rows, schema);
  }

  workload::Measurement Measure(const plan::QuerySpec& spec,
                                Algorithm algorithm, bool caching = true) {
    cost::CostParams cost_params;
    cost_params.predicate_caching = caching;
    auto m = workload::RunWithAlgorithm(&db_, spec, algorithm, cost_params,
                                        workload::ExecParamsFor(cost_params));
    EXPECT_TRUE(m.ok()) << m.status();
    return *m;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(IntegrationTest, AllAlgorithmsAgreeOnQ1Results) {
  const plan::QuerySpec spec = Query("Q1");
  const std::vector<std::string> reference =
      ResultsOf(spec, Algorithm::kPushDown);
  EXPECT_FALSE(reference.empty());
  for (const Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ResultsOf(spec, algorithm), reference)
        << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, AllAlgorithmsAgreeOnQ2Results) {
  const plan::QuerySpec spec = Query("Q2");
  const std::vector<std::string> reference =
      ResultsOf(spec, Algorithm::kPushDown);
  EXPECT_FALSE(reference.empty());
  for (const Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ResultsOf(spec, algorithm), reference)
        << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, AllAlgorithmsAgreeOnQ3ResultsWithoutCaching) {
  const plan::QuerySpec spec = Query("Q3");
  const std::vector<std::string> reference =
      ResultsOf(spec, Algorithm::kPushDown, /*caching=*/false);
  EXPECT_FALSE(reference.empty());
  for (const Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ResultsOf(spec, algorithm, /*caching=*/false), reference)
        << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, AllAlgorithmsAgreeOnQ4Results) {
  const plan::QuerySpec spec = Query("Q4");
  const std::vector<std::string> reference =
      ResultsOf(spec, Algorithm::kPushDown);
  for (const Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ResultsOf(spec, algorithm), reference)
        << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, AllAlgorithmsAgreeOnQ5Results) {
  const plan::QuerySpec spec = Query("Q5");
  const std::vector<std::string> reference =
      ResultsOf(spec, Algorithm::kPushDown);
  for (const Algorithm algorithm :
       {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank,
        Algorithm::kMigration}) {
    EXPECT_EQ(ResultsOf(spec, algorithm), reference)
        << AlgorithmName(algorithm);
  }
}

TEST_F(IntegrationTest, Fig3ShapePushDownLosesOnQ1) {
  const plan::QuerySpec spec = Query("Q1");
  const double pushdown = Measure(spec, Algorithm::kPushDown).charged_time;
  const double migration = Measure(spec, Algorithm::kMigration).charged_time;
  EXPECT_GT(pushdown, 1.5 * migration);
}

TEST_F(IntegrationTest, Fig4ShapePullUpErrorNearlyInsignificantOnQ2) {
  const plan::QuerySpec spec = Query("Q2");
  const double pushdown = Measure(spec, Algorithm::kPushDown).charged_time;
  const double pullup = Measure(spec, Algorithm::kPullUp).charged_time;
  const double migration = Measure(spec, Algorithm::kMigration).charged_time;
  // PullUp may be (slightly) worse than the best, but within a small
  // factor — the paper calls the error "nearly insignificant".
  EXPECT_LE(pullup, 1.25 * migration);
  EXPECT_LE(migration, 1.05 * pushdown);
}

TEST_F(IntegrationTest, Fig5ShapeOverEagerPullUpLosesOnQ3WithoutCaching) {
  const plan::QuerySpec spec = Query("Q3");
  const double pullup =
      Measure(spec, Algorithm::kPullUp, /*caching=*/false).charged_time;
  const double migration =
      Measure(spec, Algorithm::kMigration, /*caching=*/false).charged_time;
  EXPECT_GT(pullup, 1.5 * migration);
}

TEST_F(IntegrationTest, CachingRescuesPullUpOnQ3) {
  // §4.2: "The latter problem can be avoided by using function caching."
  const plan::QuerySpec spec = Query("Q3");
  const double with_cache =
      Measure(spec, Algorithm::kPullUp, /*caching=*/true).charged_time;
  const double without =
      Measure(spec, Algorithm::kPullUp, /*caching=*/false).charged_time;
  EXPECT_LT(with_cache, without);
}

TEST_F(IntegrationTest, Fig8ShapeMigrationBeatsOrMatchesPullRankOnQ4) {
  const plan::QuerySpec spec = Query("Q4");
  const double pullrank = Measure(spec, Algorithm::kPullRank).charged_time;
  const double migration = Measure(spec, Algorithm::kMigration).charged_time;
  EXPECT_LE(migration, pullrank * 1.01);
}

TEST_F(IntegrationTest, Fig9ShapePullUpCatastrophicOnQ5) {
  const plan::QuerySpec spec = Query("Q5");
  const workload::Measurement pullup = Measure(spec, Algorithm::kPullUp);
  const workload::Measurement migration =
      Measure(spec, Algorithm::kMigration);
  // PullUp hoists the costly selection above the expensive join; Migration
  // must be meaningfully better.
  EXPECT_GT(pullup.charged_time, 1.2 * migration.charged_time);
}

TEST_F(IntegrationTest, MigrationNeverWorseThanHeuristicsOnAllQueries) {
  for (const char* id : {"Q1", "Q2", "Q4"}) {
    const plan::QuerySpec spec = Query(id);
    const double migration = Measure(spec, Algorithm::kMigration).est_cost;
    for (const Algorithm algorithm :
         {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank}) {
      const double other = Measure(spec, algorithm).est_cost;
      EXPECT_LE(migration, other * 1.001)
          << id << " vs " << AlgorithmName(algorithm);
    }
  }
}

TEST_F(IntegrationTest, InvocationCountsMatchPlacement) {
  // On Q1 the costly predicate input is unique: PushDown evaluates it once
  // per t10 tuple; a pulled-up plan evaluates it only on join survivors.
  const plan::QuerySpec spec = Query("Q1");
  const auto pushdown = Measure(spec, Algorithm::kPushDown);
  const auto migration = Measure(spec, Algorithm::kMigration);
  const uint64_t t10_rows = 10 * static_cast<uint64_t>(config_.scale);
  EXPECT_EQ(pushdown.invocations.at("costly100"), t10_rows);
  EXPECT_LT(migration.invocations.at("costly100"), t10_rows / 2);
}

}  // namespace
}  // namespace ppp
