#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "stats/collector.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() {
    config_.scale = 300;
    config_.table_numbers = {3, 6, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  workload::Measurement Run(const std::string& id,
                            optimizer::Algorithm algorithm, bool execute) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(&db_, *spec, algorithm, {}, {},
                                        execute, /*collect_explain=*/true);
    EXPECT_TRUE(m.ok()) << m.status();
    return *m;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(ExplainTest, PlainExplainHasNoActuals) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/false);
  EXPECT_FALSE(m.explain_text.empty());
  EXPECT_EQ(m.explain_text, m.plan_text);
  EXPECT_EQ(m.explain_text.find("actual"), std::string::npos);
}

TEST_F(ExplainTest, AnalyzeAnnotatesEveryOperatorLine) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/true);
  const std::vector<std::string> plain = SplitLines(m.plan_text);
  const std::vector<std::string> analyzed = SplitLines(m.explain_text);
  // Same tree shape, one line per plan node.
  ASSERT_EQ(analyzed.size(), plain.size());
  for (const std::string& line : analyzed) {
    EXPECT_NE(line.find("actual rows="), std::string::npos) << line;
    EXPECT_NE(line.find("io seq="), std::string::npos) << line;
  }
}

TEST_F(ExplainTest, RootActualRowsMatchOutputRows) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kPushDown, /*execute=*/true);
  const std::vector<std::string> lines = SplitLines(m.explain_text);
  ASSERT_FALSE(lines.empty());
  const size_t pos = lines[0].find("actual rows=");
  ASSERT_NE(pos, std::string::npos);
  const uint64_t rows =
      std::stoull(lines[0].substr(pos + std::string("actual rows=").size()));
  EXPECT_EQ(rows, m.output_rows);
}

TEST_F(ExplainTest, ExpensiveFilterReportsCacheStats) {
  // Q4's costly100(t3.ua) filter carries a predicate cache; EXPLAIN
  // ANALYZE must surface its hit/entry/eviction counters.
  const workload::Measurement m =
      Run("Q4", optimizer::Algorithm::kMigration, /*execute=*/true);
  EXPECT_NE(m.explain_text.find("[cache "), std::string::npos);
  EXPECT_NE(m.explain_text.find("hits="), std::string::npos);
  EXPECT_NE(m.explain_text.find("evictions="), std::string::npos);
}

TEST_F(ExplainTest, AnalyzeDoesNotChangeChargedResults) {
  const workload::Measurement plain =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/true);
  auto spec = workload::GetBenchmarkQuery(db_, config_, "Q1");
  ASSERT_TRUE(spec.ok());
  auto bare = workload::RunWithAlgorithm(
      &db_, *spec, optimizer::Algorithm::kMigration, {}, {});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(plain.output_rows, bare->output_rows);
  EXPECT_DOUBLE_EQ(plain.charged_time, bare->charged_time);
}

// ---- Rank-drift annotation (runtime profiler feedback) -------------------

class RankDriftTest : public ExplainTest {
 protected:
  RankDriftTest() {
    obs::PredicateProfiler::Global().Reset();
    obs::PredicateProfiler::Global().set_enabled(true);
    obs::PredicateProfiler::Global().set_seconds_per_io(1e-4);
    obs::PredicateProfiler::Global().set_drift_threshold(0.5);
  }
  ~RankDriftTest() override {
    obs::PredicateProfiler::Global().Reset();
    obs::PredicateProfiler::Global().set_seconds_per_io(1e-4);
    obs::PredicateProfiler::Global().set_drift_threshold(0.5);
  }

  workload::Measurement RunSql(const std::string& sql) {
    auto spec = parser::ParseAndBind(sql, db_.catalog());
    EXPECT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(
        &db_, *spec, optimizer::Algorithm::kMigration, {}, {},
        /*execute=*/true, /*collect_explain=*/true);
    EXPECT_TRUE(m.ok()) << m.status();
    return *m;
  }
};

TEST_F(RankDriftTest, MisdeclaredCostFlagsDrift) {
  // Declared 100 I/Os per call, actually ~1 (a 100us sleep at the default
  // 100us-per-I/O conversion): the observed rank is ~100x steeper than the
  // estimate, far beyond any scheduler overshoot.
  catalog::FunctionDef def;
  def.name = "drifty";
  def.cost_per_call = 100.0;
  def.selectivity = 0.5;
  def.impl = [](const std::vector<types::Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return types::Value(args[0].AsInt64() % 2 == 0);
  };
  ASSERT_TRUE(db_.catalog().functions().Register(def).ok());

  const workload::Measurement m =
      RunSql("SELECT * FROM t3 WHERE drifty(t3.ua)");
  EXPECT_NE(m.explain_text.find("rank est="), std::string::npos)
      << m.explain_text;
  EXPECT_NE(m.explain_text.find("obs="), std::string::npos);
  EXPECT_NE(m.explain_text.find("DRIFT"), std::string::npos)
      << m.explain_text;
}

TEST_F(RankDriftTest, AccurateDeclarationStaysClean) {
  // Declared 10 I/Os and 0.5 selectivity; the impl sleeps 1ms (10 I/Os at
  // 100us each) and passes half its inputs. A wide threshold absorbs
  // sleep_for overshoot — the point is that agreeing numbers don't flag.
  obs::PredicateProfiler::Global().set_drift_threshold(0.9);
  catalog::FunctionDef def;
  def.name = "honest";
  def.cost_per_call = 10.0;
  def.selectivity = 0.5;
  def.impl = [](const std::vector<types::Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(1000));
    return types::Value(args[0].AsInt64() % 2 == 0);
  };
  ASSERT_TRUE(db_.catalog().functions().Register(def).ok());

  const workload::Measurement m =
      RunSql("SELECT * FROM t6 WHERE honest(t6.ua)");
  EXPECT_NE(m.explain_text.find("rank est="), std::string::npos)
      << m.explain_text;
  EXPECT_EQ(m.explain_text.find("DRIFT"), std::string::npos)
      << m.explain_text;
}

TEST_F(RankDriftTest, NoProfileDataKeepsExplainClean) {
  obs::PredicateProfiler::Global().set_enabled(false);
  obs::PredicateProfiler::Global().Reset();
  const workload::Measurement m =
      Run("Q4", optimizer::Algorithm::kMigration, /*execute=*/true);
  EXPECT_EQ(m.explain_text.find("rank est="), std::string::npos)
      << m.explain_text;
  obs::PredicateProfiler::Global().set_enabled(true);
}

// ---- Provenance tags: feedback > stats > declared ------------------------

class ProvenanceTest : public ExplainTest {
 protected:
  ProvenanceTest() { obs::PredicateFeedbackStore::Global().Clear(); }
  ~ProvenanceTest() override {
    obs::PredicateFeedbackStore::Global().Clear();
  }

  std::string Explain(const std::string& sql,
                      const cost::CostParams& cost_params) {
    auto spec = parser::ParseAndBind(sql, db_.catalog());
    EXPECT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(
        &db_, *spec, optimizer::Algorithm::kMigration, cost_params,
        workload::ExecParamsFor(cost_params),
        /*execute=*/false, /*collect_explain=*/true);
    EXPECT_TRUE(m.ok()) << m.status();
    return m->explain_text;
  }
};

TEST_F(ProvenanceTest, DeclaredTierBeforeAnalyze) {
  // No ANALYZE has run and no feedback exists: every annotated predicate
  // reports the declared tier.
  const std::string text = Explain(
      "SELECT * FROM t3 WHERE t3.a10 = 5 AND costly100(t3.ua)", {});
  EXPECT_NE(text.find("~decl"), std::string::npos) << text;
  EXPECT_EQ(text.find("~stats"), std::string::npos) << text;
  EXPECT_EQ(text.find("~feedback"), std::string::npos) << text;
}

TEST_F(ProvenanceTest, StatsTierAfterAnalyze) {
  auto table = db_.catalog().GetTable("t3");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      stats::AnalyzeTable(*table, stats::AnalyzeOptions::Default()).ok());
  const std::string text =
      Explain("SELECT * FROM t3 WHERE t3.a10 = 5", {});
  EXPECT_NE(text.find("sel=") , std::string::npos) << text;
  EXPECT_NE(text.find("~stats"), std::string::npos) << text;

  // Disabling the stats tier drops the tag back to declared.
  cost::CostParams no_stats;
  no_stats.use_collected_stats = false;
  const std::string declared =
      Explain("SELECT * FROM t3 WHERE t3.a10 = 5", no_stats);
  EXPECT_EQ(declared.find("~stats"), std::string::npos) << declared;
  EXPECT_NE(declared.find("~decl"), std::string::npos) << declared;
}

TEST_F(ProvenanceTest, FeedbackTierOutranksStats) {
  obs::FeedbackEntry entry;
  entry.cost_per_call = 42.0;
  entry.selectivity = 0.125;
  entry.has_selectivity = true;
  entry.samples = 100;
  obs::PredicateFeedbackStore::Global().Update("costly100", entry);

  cost::CostParams params;
  params.use_feedback = true;
  const std::string text =
      Explain("SELECT * FROM t3 WHERE costly100(t3.ua)", params);
  EXPECT_NE(text.find("~feedback"), std::string::npos) << text;
  EXPECT_NE(text.find("sel=0.125~feedback"), std::string::npos) << text;
  EXPECT_NE(text.find("cost=42~feedback"), std::string::npos) << text;
}

// ---- OperatorStats inclusive accounting (satellite audit) ----------------

class StatsAuditTest : public ::testing::Test {
 protected:
  StatsAuditTest() {
    config_.scale = 200;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  double InclusiveSeconds(const exec::Operator& op) {
    return op.stats().open_seconds + op.stats().next_seconds;
  }

  /// Self time = inclusive minus children's inclusive. Child wrapper calls
  /// nest inside the parent's timed interval, so self must be >= -epsilon
  /// and the self times must sum to at most the root's inclusive time.
  double SumPositiveSelf(const exec::Operator& op, double* min_self) {
    double children = 0.0;
    double sum = 0.0;
    for (const exec::Operator* child : op.Children()) {
      children += InclusiveSeconds(*child);
      sum += SumPositiveSelf(*child, min_self);
    }
    const double self = InclusiveSeconds(op) - children;
    *min_self = std::min(*min_self, self);
    return sum + std::max(0.0, self);
  }

  /// Parent inclusive I/O must cover the children's (monotone pool
  /// counters read around nested calls).
  void CheckIoNesting(const exec::Operator& op) {
    uint64_t seq = 0, rand = 0, hit = 0;
    for (const exec::Operator* child : op.Children()) {
      seq += child->stats().io.sequential_reads;
      rand += child->stats().io.random_reads;
      hit += child->stats().io.buffer_hits;
      CheckIoNesting(*child);
    }
    EXPECT_GE(op.stats().io.sequential_reads, seq);
    EXPECT_GE(op.stats().io.random_reads, rand);
    EXPECT_GE(op.stats().io.buffer_hits, hit);
  }

  void RunAndAudit(const std::string& id, size_t batch_size) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    ASSERT_TRUE(spec.ok()) << spec.status();
    optimizer::Optimizer opt(&db_.catalog(), {});
    auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    ASSERT_TRUE(result.ok()) << result.status();

    exec::ExecContext ctx;
    ctx.catalog = &db_.catalog();
    ctx.params.batch_size = batch_size;
    for (const plan::TableRef& ref : spec->tables) {
      auto table = db_.catalog().GetTable(ref.table_name);
      ASSERT_TRUE(table.ok());
      ctx.binding[ref.alias] = *table;
    }
    std::unique_ptr<exec::Operator> root;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr, nullptr,
                                  &root);
    ASSERT_TRUE(rows.ok()) << rows.status();
    ASSERT_NE(root, nullptr);

    constexpr double kEps = 1e-3;  // Clock-read jitter, seconds.
    double min_self = 0.0;
    const double self_sum = SumPositiveSelf(*root, &min_self);
    EXPECT_GE(min_self, -kEps) << id << " batch=" << batch_size;
    EXPECT_LE(self_sum, InclusiveSeconds(*root) + kEps)
        << id << " batch=" << batch_size;
    CheckIoNesting(*root);
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(StatsAuditTest, SelfTimesNestUnderBatchDrain) {
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    RunAndAudit(id, exec::ExecParams{}.batch_size);
  }
}

TEST_F(StatsAuditTest, SelfTimesNestUnderTupleShim) {
  // batch_size=1 forces the Next()-shim drain shape everywhere.
  for (const char* id : {"Q1", "Q4"}) {
    RunAndAudit(id, 1);
  }
}

TEST(StripExplainTest, RecognizesPrefixes) {
  std::string rest;
  EXPECT_EQ(parser::StripExplain("SELECT * FROM t3", &rest),
            parser::StatementKind::kSelect);
  EXPECT_EQ(rest, "SELECT * FROM t3");

  EXPECT_EQ(parser::StripExplain("EXPLAIN SELECT * FROM t3", &rest),
            parser::StatementKind::kExplain);
  EXPECT_EQ(rest.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(rest.find("SELECT"), std::string::npos);

  EXPECT_EQ(
      parser::StripExplain("  explain  analyze  select * from t3", &rest),
      parser::StatementKind::kExplainAnalyze);
  EXPECT_NE(rest.find("select"), std::string::npos);
}

TEST(StripExplainTest, DoesNotEatIdentifierPrefixes) {
  // "EXPLAINER" is an identifier, not the keyword.
  std::string rest;
  EXPECT_EQ(parser::StripExplain("EXPLAINER", &rest),
            parser::StatementKind::kSelect);
  EXPECT_EQ(rest, "EXPLAINER");
  // EXPLAIN followed by a non-ANALYZE word strips only EXPLAIN.
  EXPECT_EQ(parser::StripExplain("EXPLAIN ANALYZER", &rest),
            parser::StatementKind::kExplain);
  EXPECT_NE(rest.find("ANALYZER"), std::string::npos);
}

TEST(StripExplainTest, ParseStatementCarriesKind) {
  auto stmt = parser::ParseStatement("EXPLAIN ANALYZE SELECT * FROM t3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, parser::StatementKind::kExplainAnalyze);
  ASSERT_EQ(stmt->select.tables.size(), 1u);
  EXPECT_EQ(stmt->select.tables[0].table_name, "t3");

  auto plain = parser::ParseStatement("SELECT * FROM t3");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->kind, parser::StatementKind::kSelect);
}

}  // namespace
}  // namespace ppp
