#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parser/parser.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() {
    config_.scale = 300;
    config_.table_numbers = {3, 6, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  workload::Measurement Run(const std::string& id,
                            optimizer::Algorithm algorithm, bool execute) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(&db_, *spec, algorithm, {}, {},
                                        execute, /*collect_explain=*/true);
    EXPECT_TRUE(m.ok()) << m.status();
    return *m;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(ExplainTest, PlainExplainHasNoActuals) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/false);
  EXPECT_FALSE(m.explain_text.empty());
  EXPECT_EQ(m.explain_text, m.plan_text);
  EXPECT_EQ(m.explain_text.find("actual"), std::string::npos);
}

TEST_F(ExplainTest, AnalyzeAnnotatesEveryOperatorLine) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/true);
  const std::vector<std::string> plain = SplitLines(m.plan_text);
  const std::vector<std::string> analyzed = SplitLines(m.explain_text);
  // Same tree shape, one line per plan node.
  ASSERT_EQ(analyzed.size(), plain.size());
  for (const std::string& line : analyzed) {
    EXPECT_NE(line.find("actual rows="), std::string::npos) << line;
    EXPECT_NE(line.find("io seq="), std::string::npos) << line;
  }
}

TEST_F(ExplainTest, RootActualRowsMatchOutputRows) {
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kPushDown, /*execute=*/true);
  const std::vector<std::string> lines = SplitLines(m.explain_text);
  ASSERT_FALSE(lines.empty());
  const size_t pos = lines[0].find("actual rows=");
  ASSERT_NE(pos, std::string::npos);
  const uint64_t rows =
      std::stoull(lines[0].substr(pos + std::string("actual rows=").size()));
  EXPECT_EQ(rows, m.output_rows);
}

TEST_F(ExplainTest, ExpensiveFilterReportsCacheStats) {
  // Q4's costly100(t3.ua) filter carries a predicate cache; EXPLAIN
  // ANALYZE must surface its hit/entry/eviction counters.
  const workload::Measurement m =
      Run("Q4", optimizer::Algorithm::kMigration, /*execute=*/true);
  EXPECT_NE(m.explain_text.find("[cache "), std::string::npos);
  EXPECT_NE(m.explain_text.find("hits="), std::string::npos);
  EXPECT_NE(m.explain_text.find("evictions="), std::string::npos);
}

TEST_F(ExplainTest, AnalyzeDoesNotChangeChargedResults) {
  const workload::Measurement plain =
      Run("Q1", optimizer::Algorithm::kMigration, /*execute=*/true);
  auto spec = workload::GetBenchmarkQuery(db_, config_, "Q1");
  ASSERT_TRUE(spec.ok());
  auto bare = workload::RunWithAlgorithm(
      &db_, *spec, optimizer::Algorithm::kMigration, {}, {});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(plain.output_rows, bare->output_rows);
  EXPECT_DOUBLE_EQ(plain.charged_time, bare->charged_time);
}

TEST(StripExplainTest, RecognizesPrefixes) {
  std::string rest;
  EXPECT_EQ(parser::StripExplain("SELECT * FROM t3", &rest),
            parser::StatementKind::kSelect);
  EXPECT_EQ(rest, "SELECT * FROM t3");

  EXPECT_EQ(parser::StripExplain("EXPLAIN SELECT * FROM t3", &rest),
            parser::StatementKind::kExplain);
  EXPECT_EQ(rest.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(rest.find("SELECT"), std::string::npos);

  EXPECT_EQ(
      parser::StripExplain("  explain  analyze  select * from t3", &rest),
      parser::StatementKind::kExplainAnalyze);
  EXPECT_NE(rest.find("select"), std::string::npos);
}

TEST(StripExplainTest, DoesNotEatIdentifierPrefixes) {
  // "EXPLAINER" is an identifier, not the keyword.
  std::string rest;
  EXPECT_EQ(parser::StripExplain("EXPLAINER", &rest),
            parser::StatementKind::kSelect);
  EXPECT_EQ(rest, "EXPLAINER");
  // EXPLAIN followed by a non-ANALYZE word strips only EXPLAIN.
  EXPECT_EQ(parser::StripExplain("EXPLAIN ANALYZER", &rest),
            parser::StatementKind::kExplain);
  EXPECT_NE(rest.find("ANALYZER"), std::string::npos);
}

TEST(StripExplainTest, ParseStatementCarriesKind) {
  auto stmt = parser::ParseStatement("EXPLAIN ANALYZE SELECT * FROM t3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, parser::StatementKind::kExplainAnalyze);
  ASSERT_EQ(stmt->select.tables.size(), 1u);
  EXPECT_EQ(stmt->select.tables[0].table_name, "t3");

  auto plain = parser::ParseStatement("SELECT * FROM t3");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->kind, parser::StatementKind::kSelect);
}

}  // namespace
}  // namespace ppp
