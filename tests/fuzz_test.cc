// Randomized cross-algorithm consistency: the paper's §5 debugging
// methodology ("benchmarking is absolutely crucial to thoroughly debugging
// a query optimizer") turned into an automated property suite. For each
// seeded random query:
//   1. every placement algorithm returns the same result set;
//   2. Predicate Migration's estimate never exceeds the simpler
//      heuristics' (the paper's observed invariant after debugging);
//   3. Exhaustive's estimate lower-bounds everything it can plan.

#include <gtest/gtest.h>

#include <random>

#include "net/wire.h"

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/random_queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

using optimizer::Algorithm;

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static workload::Database* db() {
    static workload::Database* db = [] {
      auto* instance = new workload::Database();
      EXPECT_TRUE(
          workload::LoadBenchmarkDatabase(instance, Config()).ok());
      EXPECT_TRUE(workload::RegisterBenchmarkFunctions(instance).ok());
      return instance;
    }();
    return db;
  }

  static workload::BenchmarkConfig Config() {
    workload::BenchmarkConfig config;
    config.scale = 150;
    config.table_numbers = {1, 3, 6, 9, 10};
    return config;
  }

  std::optional<std::vector<std::string>> Execute(
      const plan::QuerySpec& spec, Algorithm algorithm, double* est) {
    optimizer::Optimizer opt(&db()->catalog(), {});
    auto result = opt.Optimize(spec, algorithm);
    EXPECT_TRUE(result.ok())
        << AlgorithmName(algorithm) << ": " << result.status();
    if (!result.ok()) return std::nullopt;
    *est = result->est_cost;
    // Skip execution of plans with huge outputs; the optimizer-level
    // invariants are still checked.
    if (result->plan->est_rows > 100000) return std::nullopt;

    exec::ExecContext ctx;
    ctx.catalog = &db()->catalog();
    for (const plan::TableRef& ref : spec.tables) {
      ctx.binding[ref.alias] = *db()->catalog().GetTable(ref.table_name);
    }
    types::RowSchema schema;
    auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr, &schema);
    EXPECT_TRUE(rows.ok()) << rows.status();
    if (!rows.ok()) return std::nullopt;
    return workload::CanonicalResults(*rows, schema);
  }
};

TEST_P(FuzzTest, AlgorithmsAgreeAndMigrationDominates) {
  common::Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  const plan::QuerySpec spec =
      workload::RandomQuery(Config(), {}, &rng);
  SCOPED_TRACE(spec.ToString());

  std::map<Algorithm, double> est;
  std::optional<std::vector<std::string>> reference;
  for (const Algorithm algorithm :
       {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank,
        Algorithm::kMigration, Algorithm::kLdl}) {
    double e = 0;
    auto results = Execute(spec, algorithm, &e);
    est[algorithm] = e;
    if (!results.has_value()) continue;
    if (!reference.has_value()) {
      reference = std::move(results);
    } else {
      EXPECT_EQ(*results, *reference) << AlgorithmName(algorithm);
    }
  }

  // Migration never estimated worse than the simpler System R heuristics.
  for (const Algorithm algorithm :
       {Algorithm::kPushDown, Algorithm::kPullUp, Algorithm::kPullRank}) {
    EXPECT_LE(est[Algorithm::kMigration], est[algorithm] * 1.0001)
        << "migration worse than " << AlgorithmName(algorithm);
  }

  // Exhaustive lower-bounds everything (skip 4-table queries: slow).
  if (spec.tables.size() <= 3) {
    double exhaustive = 0;
    Execute(spec, Algorithm::kExhaustive, &exhaustive);
    for (const auto& [algorithm, cost] : est) {
      EXPECT_LE(exhaustive, cost * 1.0001)
          << "exhaustive worse than " << AlgorithmName(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Wire-protocol frame-parser fuzzing: the parser faces raw network bytes,
// so it must absorb arbitrary garbage without crashing and recover cleanly
// after every violation (a Reset models the connection cycling).

class FrameFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FrameFuzzTest, RandomBytesNeverCrashAndResyncCleanly) {
  std::mt19937 rng(0xF7A3E000u + static_cast<unsigned>(GetParam()));
  net::FrameParser parser(/*max_frame_bytes=*/4096);
  std::vector<std::string> out;
  for (int round = 0; round < 200; ++round) {
    // Random chunk: raw bytes (often a garbage length prefix), sometimes a
    // valid frame, sometimes a truncated or oversized one, NULs included.
    std::string chunk;
    switch (rng() % 4) {
      case 0: {  // Pure garbage, embedded NULs and high bytes included.
        const size_t len = rng() % 64;
        for (size_t i = 0; i < len; ++i) {
          chunk.push_back(static_cast<char>(rng() % 256));
        }
        break;
      }
      case 1: {  // A well-formed frame (binary payload).
        std::string payload;
        const size_t len = rng() % 128;
        for (size_t i = 0; i < len; ++i) {
          payload.push_back(static_cast<char>(rng() % 256));
        }
        chunk = net::EncodeFrame(payload);
        break;
      }
      case 2: {  // A truncated frame: header promises more than follows.
        chunk = net::EncodeFrame(std::string(32, 'x'))
                    .substr(0, 4 + rng() % 16);
        break;
      }
      default: {  // A giant declared length, over the 4096-byte cap.
        const uint32_t giant = 4097 + rng() % (1u << 30);
        chunk.push_back(static_cast<char>((giant >> 24) & 0xff));
        chunk.push_back(static_cast<char>((giant >> 16) & 0xff));
        chunk.push_back(static_cast<char>((giant >> 8) & 0xff));
        chunk.push_back(static_cast<char>(giant & 0xff));
        break;
      }
    }
    // Feed in randomly sized sub-chunks (network reads are arbitrary).
    size_t off = 0;
    bool poisoned = parser.poisoned();
    while (off < chunk.size()) {
      const size_t n = std::min<size_t>(1 + rng() % 16, chunk.size() - off);
      const common::Status status = parser.Feed(chunk.data() + off, n, &out);
      if (!status.ok()) {
        EXPECT_TRUE(parser.poisoned());
        poisoned = true;
      }
      off += n;
    }
    // Every completed payload respects the size cap, whatever went in.
    for (const std::string& payload : out) {
      EXPECT_LE(payload.size(), 4096u);
    }
    out.clear();
    if (poisoned) {
      // Clean resync: after Reset a canonical frame parses immediately.
      parser.Reset();
      const std::string probe = net::EncodeFrame("PING");
      ASSERT_TRUE(parser.Feed(probe.data(), probe.size(), &out).ok());
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], "PING");
      out.clear();
    } else if (parser.buffered() > 4100) {
      // Garbage that happens to look like a small declared length can
      // accumulate; cycle the connection as the server would.
      parser.Reset();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace ppp
