#include <gtest/gtest.h>

#include "types/row_schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace ppp::types {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kNull);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_TRUE(Value(true).AsBool());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{-100})), 0);
  EXPECT_GT(Value(int64_t{-100}).Compare(Value()), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

TEST(ValueTest, HeterogeneousComparisonIsDeterministic) {
  const int c1 = Value("x").Compare(Value(int64_t{5}));
  const int c2 = Value(int64_t{5}).Compare(Value("x"));
  EXPECT_NE(c1, 0);
  EXPECT_EQ(c1, -c2);
}

TEST(ValueTest, HashConsistentWithEquality) {
  // 3 == 3.0, so their hashes must agree.
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("s").Hash(), Value("s").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("x").ToString(), "'x'");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(ValueTest, IntegerComparisonIsExactAtLargeMagnitude) {
  // Doubles cannot distinguish these; int64 comparison must.
  const int64_t a = (int64_t{1} << 62) + 1;
  const int64_t b = int64_t{1} << 62;
  EXPECT_GT(Value(a).Compare(Value(b)), 0);
}

TEST(TupleTest, RoundTripAllTypes) {
  Tuple t({Value(int64_t{-5}), Value(3.25), Value("hello"), Value(true),
           Value()});
  auto back = Tuple::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, EmptyTupleRoundTrip) {
  Tuple t;
  auto back = Tuple::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumValues(), 0u);
}

TEST(TupleTest, DeserializeRejectsTruncatedHeader) {
  EXPECT_FALSE(Tuple::Deserialize("xx").ok());
}

TEST(TupleTest, DeserializeRejectsTruncatedPayload) {
  Tuple t({Value(int64_t{1}), Value("long string payload")});
  std::string bytes = t.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(Tuple::Deserialize(bytes).ok());
}

TEST(TupleTest, Concat) {
  Tuple a({Value(int64_t{1})});
  Tuple b({Value(int64_t{2}), Value("x")});
  Tuple c = Tuple::Concat(a, b);
  ASSERT_EQ(c.NumValues(), 3u);
  EXPECT_EQ(c.Get(0).AsInt64(), 1);
  EXPECT_EQ(c.Get(2).AsString(), "x");
}

TEST(TupleTest, ToString) {
  Tuple t({Value(int64_t{1}), Value()});
  EXPECT_EQ(t.ToString(), "(1, NULL)");
}

TEST(RowSchemaTest, FindQualified) {
  RowSchema schema({{"t1", "a", TypeId::kInt64},
                    {"t2", "a", TypeId::kInt64},
                    {"t2", "b", TypeId::kString}});
  EXPECT_EQ(schema.FindColumn("t1", "a"), std::optional<size_t>(0));
  EXPECT_EQ(schema.FindColumn("t2", "a"), std::optional<size_t>(1));
  EXPECT_EQ(schema.FindColumn("t2", "b"), std::optional<size_t>(2));
  EXPECT_FALSE(schema.FindColumn("t3", "a").has_value());
}

TEST(RowSchemaTest, UnqualifiedAmbiguityFails) {
  RowSchema schema({{"t1", "a", TypeId::kInt64},
                    {"t2", "a", TypeId::kInt64}});
  EXPECT_FALSE(schema.FindColumn("", "a").has_value());  // Ambiguous.
}

TEST(RowSchemaTest, UnqualifiedUniqueSucceeds) {
  RowSchema schema({{"t1", "a", TypeId::kInt64},
                    {"t2", "b", TypeId::kInt64}});
  EXPECT_EQ(schema.FindColumn("", "b"), std::optional<size_t>(1));
}

TEST(RowSchemaTest, Concat) {
  RowSchema a({{"t1", "x", TypeId::kInt64}});
  RowSchema b({{"t2", "y", TypeId::kString}});
  RowSchema c = RowSchema::Concat(a, b);
  ASSERT_EQ(c.NumColumns(), 2u);
  EXPECT_EQ(c.Column(1).QualifiedName(), "t2.y");
}

TEST(RowSchemaTest, ToString) {
  RowSchema schema({{"t", "c", TypeId::kInt64}});
  EXPECT_EQ(schema.ToString(), "t.c:INT64");
}

}  // namespace
}  // namespace ppp::types
