#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"
#include "expr/predicate.h"
#include "plan/plan_node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::cost {
namespace {

using expr::Call;
using expr::Col;
using expr::Eq;
using expr::Int;
using types::Tuple;
using types::TypeId;
using types::Value;

/// r: 1000 rows (r.key unique, r.grp 10 distinct), s: 5000 rows (s.key
/// unique, s.grp 50 distinct). All int columns plus padding so the tables
/// span a meaningful number of pages.
class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : pool_(&disk_, 512), catalog_(&pool_) {
    MakeTable("r", 1000, 10);
    MakeTable("s", 5000, 50);
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.5)
            .ok());
    binding_ = {{"r", *catalog_.GetTable("r")}, {"s", *catalog_.GetTable("s")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
  }

  void MakeTable(const std::string& name, int64_t rows, int64_t groups) {
    auto table = catalog_.CreateTable(name, {{"key", TypeId::kInt64},
                                             {"grp", TypeId::kInt64},
                                             {"pad", TypeId::kString}});
    ASSERT_TRUE(table.ok());
    const std::string pad(60, 'p');
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)->Insert(Tuple({Value(i), Value(i % groups), Value(pad)}))
              .ok());
    }
    ASSERT_TRUE((*table)->CreateIndex("key").ok());
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  CostModel Model(CostParams params = {}) {
    return CostModel(&catalog_, binding_, params);
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
};

TEST_F(CostModelTest, SeqScanAnnotations) {
  CostModel model = Model();
  plan::PlanPtr scan = plan::MakeSeqScan("r", "r");
  ASSERT_TRUE(model.Annotate(scan.get()).ok());
  EXPECT_DOUBLE_EQ(scan->est_rows, 1000);
  const catalog::Table* r = binding_["r"];
  EXPECT_DOUBLE_EQ(scan->est_cost, static_cast<double>(r->NumPages()));
  EXPECT_GT(scan->est_width, 80);  // ~95 bytes serialized.
  EXPECT_FALSE(scan->est_order.has_value());
  EXPECT_DOUBLE_EQ(scan->est_udf_cost, 0);
}

TEST_F(CostModelTest, IndexScanAnnotations) {
  CostModel model = Model();
  plan::PlanPtr scan = plan::MakeIndexScan(
      "r", "r", "key", Value(int64_t{5}), Analyze(Eq(Col("r", "key"), Int(5))));
  ASSERT_TRUE(model.Annotate(scan.get()).ok());
  EXPECT_NEAR(scan->est_rows, 1.0, 1e-9);  // key is unique.
  EXPECT_NEAR(scan->est_cost, 3.0 + 1.0, 1e-9);  // Probe + one fetch.
  EXPECT_EQ(scan->est_order, std::optional<std::string>("r.key"));
}

TEST_F(CostModelTest, FilterAnnotations) {
  CostModel model = Model();
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "key")})));
  ASSERT_TRUE(model.Annotate(plan.get()).ok());
  EXPECT_DOUBLE_EQ(plan->est_rows, 500);  // selectivity 0.5.
  // 1000 unique inputs -> 1000 evaluations at cost 100 each.
  EXPECT_DOUBLE_EQ(plan->est_udf_cost, 100000);
  EXPECT_DOUBLE_EQ(plan->est_cost, plan->children[0]->est_cost + 100000);
  // Expensive filters do not reduce est_rows_noexp.
  EXPECT_DOUBLE_EQ(plan->est_rows_noexp, 1000);
}

TEST_F(CostModelTest, FilterCachingBoundsEvaluations) {
  CostParams params;
  params.predicate_caching = true;
  CostModel model = Model(params);
  // Predicate on r.grp: only 10 distinct bindings, so at most 10
  // evaluations regardless of 1000 input rows (§5.1).
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "grp")})));
  ASSERT_TRUE(model.Annotate(plan.get()).ok());
  EXPECT_DOUBLE_EQ(plan->est_udf_cost, 10 * 100);

  CostParams no_cache;
  no_cache.predicate_caching = false;
  CostModel model2 = Model(no_cache);
  ASSERT_TRUE(model2.Annotate(plan.get()).ok());
  EXPECT_DOUBLE_EQ(plan->est_udf_cost, 1000 * 100);
}

TEST_F(CostModelTest, CheapFilterReducesNoexpRows) {
  CostModel model = Model();
  plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                                        Analyze(Eq(Col("r", "grp"), Int(3))));
  ASSERT_TRUE(model.Annotate(plan.get()).ok());
  EXPECT_DOUBLE_EQ(plan->est_rows, 100);
  EXPECT_DOUBLE_EQ(plan->est_rows_noexp, 100);
  EXPECT_DOUBLE_EQ(plan->est_udf_cost, 0);
}

plan::PlanPtr JoinOf(plan::JoinMethod method, plan::PlanPtr outer,
                     plan::PlanPtr inner, expr::PredicateInfo pred) {
  return plan::MakeJoin(method, std::move(outer), std::move(inner),
                        std::move(pred));
}

TEST_F(CostModelTest, JoinCardinalityUsesCrossProductSelectivity) {
  CostModel model = Model();
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kHash, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  // s = 1/5000, out = 1000*5000/5000 = 1000.
  EXPECT_NEAR(join->est_rows, 1000, 1e-6);
  EXPECT_DOUBLE_EQ(join->est_width,
                   join->children[0]->est_width +
                       join->children[1]->est_width);
}

TEST_F(CostModelTest, NestedLoopChargesRescans) {
  CostModel model = Model();
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kNestLoop, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  const double s_pages = static_cast<double>(binding_["s"]->NumPages());
  const double r_pages = static_cast<double>(binding_["r"]->NumPages());
  // outer scan + inner scan + (R-1) rescans of the inner.
  EXPECT_NEAR(join->est_cost, r_pages + s_pages + 999 * s_pages, 1.0);
}

TEST_F(CostModelTest, IndexNestLoopExcludesInnerScanCost) {
  CostModel model = Model();
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kIndexNestLoop, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  const double r_pages = static_cast<double>(binding_["r"]->NumPages());
  // outer + 1000 probes * 3 + 1000 matching fetches * 1.
  EXPECT_NEAR(join->est_cost, r_pages + 1000 * 3 + 1000, 1.0);
}

TEST_F(CostModelTest, LinearityOfJoinCostInInputs) {
  // The paper's §3.2 requirement: join cost is k{R} + l{S} + m (no {R}{S}
  // term) for cheap primaries. Verify second differences vanish.
  CostModel model = Model();
  for (const plan::JoinMethod method :
       {plan::JoinMethod::kNestLoop, plan::JoinMethod::kIndexNestLoop,
        plan::JoinMethod::kMerge, plan::JoinMethod::kHash}) {
    plan::PlanPtr join =
        JoinOf(method, plan::MakeSeqScan("r", "r"),
               plan::MakeSeqScan("s", "s"),
               Analyze(Eq(Col("r", "key"), Col("s", "key"))));
    ASSERT_TRUE(model.Annotate(join.get()).ok());
    const double c00 = model.JoinExtraCost(*join, 1000, 5000);
    const double c10 = model.JoinExtraCost(*join, 2000, 5000);
    const double c01 = model.JoinExtraCost(*join, 1000, 10000);
    const double c11 = model.JoinExtraCost(*join, 2000, 10000);
    // Cross term ~ 0: c11 - c10 - c01 + c00 == 0 up to paging rounding,
    // except the index nested loop fetch term which is genuinely s*R*S but
    // tiny (s = 1/5000).
    const double cross = c11 - c10 - c01 + c00;
    if (method == plan::JoinMethod::kIndexNestLoop) {
      EXPECT_NEAR(cross, 1000.0, 10.0) << plan::JoinMethodName(method);
    } else {
      EXPECT_NEAR(cross, 0.0, 50.0) << plan::JoinMethodName(method);
    }
  }
}

TEST_F(CostModelTest, ExpensivePrimaryAddsCrossProductTerm) {
  CostParams params;
  params.predicate_caching = false;
  CostModel model = Model(params);
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kNestLoop, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Call("costly", {Col("r", "key"), Col("s", "key")})));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  const double c00 = model.JoinExtraCost(*join, 100, 100);
  const double c11 = model.JoinExtraCost(*join, 200, 200);
  const double c10 = model.JoinExtraCost(*join, 200, 100);
  const double c01 = model.JoinExtraCost(*join, 100, 200);
  // c_p {R}{S}: second difference = 100 * 10000.
  EXPECT_NEAR(c11 - c10 - c01 + c00, 100.0 * 100 * 100, 200.0);
}

TEST_F(CostModelTest, PerInputSelectivityAsymmetric) {
  // Key-key join of 1000 x 5000: every r row survives (sel 1 over r),
  // one fifth of s rows survive (sel 0.2 over s) — the paper's motivating
  // example for discarding the global model (§3.2).
  CostParams params;
  params.predicate_caching = false;
  CostModel model = Model(params);
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kHash, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  const JoinStreamInfo over_r = model.JoinStream(*join, 0);
  const JoinStreamInfo over_s = model.JoinStream(*join, 1);
  EXPECT_NEAR(over_r.selectivity, 1.0, 1e-9);   // (1/5000) * 5000.
  EXPECT_NEAR(over_s.selectivity, 0.2, 1e-9);   // (1/5000) * 1000.
}

TEST_F(CostModelTest, GlobalModelCollapsesPerInputSelectivity) {
  CostParams params;
  params.per_input_selectivity = false;
  CostModel model = Model(params);
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kHash, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  EXPECT_NEAR(model.JoinStream(*join, 0).selectivity, 1.0 / 5000, 1e-9);
  EXPECT_NEAR(model.JoinStream(*join, 1).selectivity, 1.0 / 5000, 1e-9);
}

TEST_F(CostModelTest, CachingClampsPerInputSelectivityAtOne) {
  CostParams params;
  params.predicate_caching = true;
  CostModel model = Model(params);
  // Join r.grp (10 values) with s.grp (50 values): without caching, sel
  // over s would be (1/50)*1000 = 20; with value-based selectivities it is
  // min(1, (1/50)*10) = 0.2 (values of r.grp).
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kHash, plan::MakeSeqScan("s", "s"),
             plan::MakeSeqScan("r", "r"),
             Analyze(Eq(Col("s", "grp"), Col("r", "grp"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  EXPECT_NEAR(model.JoinStream(*join, 0).selectivity, 0.2, 1e-9);

  CostParams no_cache;
  no_cache.predicate_caching = false;
  CostModel model2 = Model(no_cache);
  EXPECT_NEAR(model2.JoinStream(*join, 0).selectivity, (1.0 / 50) * 1000,
              1e-6);
}

TEST_F(CostModelTest, PessimisticCardinalityIgnoresExpensiveFilters) {
  CostParams params;
  params.predicate_caching = false;
  params.current_cardinality_estimate = false;  // Ablation A4.
  CostModel pessimistic = Model(params);
  CostParams current = params;
  current.current_cardinality_estimate = true;
  CostModel optimistic = Model(current);

  // Expensive filter on r halves {r}; the per-input selectivity of the
  // join over s = s * {r} differs accordingly.
  plan::PlanPtr join = JoinOf(
      plan::JoinMethod::kHash,
      plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                       Analyze(Call("costly", {Col("r", "key")}))),
      plan::MakeSeqScan("s", "s"),
      Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(optimistic.Annotate(join.get()).ok());
  EXPECT_NEAR(optimistic.JoinStream(*join, 1).selectivity,
              (1.0 / 5000) * 500, 1e-9);
  ASSERT_TRUE(pessimistic.Annotate(join.get()).ok());
  EXPECT_NEAR(pessimistic.JoinStream(*join, 1).selectivity,
              (1.0 / 5000) * 1000, 1e-9);
}

TEST_F(CostModelTest, SortCostZeroWhenFitsInMemory) {
  CostParams params;
  params.buffer_pages = 1000;
  CostModel model = Model(params);
  EXPECT_DOUBLE_EQ(model.SortCost(500), 0.0);
  EXPECT_GT(model.SortCost(2000), 0.0);
}

TEST_F(CostModelTest, SortCostGrowsWithPasses) {
  CostParams params;
  params.buffer_pages = 10;
  params.sort_fanout = 8;
  CostModel model = Model(params);
  // 80 pages: 8 runs, 1 merge pass. 6400 pages: 640 runs, 4 passes.
  EXPECT_DOUBLE_EQ(model.SortCost(80), 2.0 * 80 * 1);
  EXPECT_DOUBLE_EQ(model.SortCost(6400), 2.0 * 6400 * 4);
}

TEST_F(CostModelTest, MergeJoinSkipsSortOnOrderedInput) {
  CostParams params;
  params.buffer_pages = 4;  // Everything spills: sorts are visible.
  CostModel model = Model(params);
  expr::PredicateInfo pred = Analyze(Eq(Col("r", "key"), Col("s", "key")));

  plan::PlanPtr unordered =
      JoinOf(plan::JoinMethod::kMerge, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"), pred);
  ASSERT_TRUE(model.Annotate(unordered.get()).ok());

  // An index scan output is ordered on its column; the merge join on the
  // same column should skip that sort.
  plan::PlanPtr ordered = JoinOf(
      plan::JoinMethod::kMerge,
      plan::MakeIndexScan("r", "r", "key", Value(int64_t{1}),
                          Analyze(Eq(Col("r", "key"), Int(1)))),
      plan::MakeSeqScan("s", "s"), pred);
  ASSERT_TRUE(model.Annotate(ordered.get()).ok());
  const double unordered_extra =
      model.JoinExtraCost(*unordered, 1000, 5000);
  const double ordered_extra = model.JoinExtraCost(*ordered, 1000, 5000);
  EXPECT_LT(ordered_extra, unordered_extra);
}

TEST_F(CostModelTest, RankSignsAtZeroCost) {
  CostParams params;
  params.buffer_pages = 1 << 20;  // Joins are free.
  params.predicate_caching = false;
  CostModel model = Model(params);
  plan::PlanPtr join =
      JoinOf(plan::JoinMethod::kHash, plan::MakeSeqScan("r", "r"),
             plan::MakeSeqScan("s", "s"),
             Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ASSERT_TRUE(model.Annotate(join.get()).ok());
  // Over r: selectivity 1.0 -> rank +inf (never pull anything above...
  // i.e. the join is *not* beneficial for the r stream).
  EXPECT_TRUE(std::isinf(model.JoinStream(*join, 0).rank));
  EXPECT_GT(model.JoinStream(*join, 0).rank, 0);
  // Over s: selectivity 0.2 -> free filtering, rank -inf.
  EXPECT_TRUE(std::isinf(model.JoinStream(*join, 1).rank));
  EXPECT_LT(model.JoinStream(*join, 1).rank, 0);
}

TEST_F(CostModelTest, AnnotateFailsOnUnboundAlias) {
  CostModel model = Model();
  plan::PlanPtr scan = plan::MakeSeqScan("zz", "zz");
  EXPECT_FALSE(model.Annotate(scan.get()).ok());
}

TEST_F(CostModelTest, PagesForRoundsUp) {
  EXPECT_DOUBLE_EQ(CostModel::PagesFor(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::PagesFor(1, 100), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::PagesFor(41, 100), 2.0);  // 4100 bytes.
}

TEST_F(CostModelTest, VectorizedModeDividesCheapCpuCharge) {
  const expr::ExprPtr cheap =
      expr::Cmp(expr::CompareOp::kLt, Col("r", "key"), Int(500));

  // cpu_tuple_cost defaults to 0: cheap filters stay free either way
  // (historical plans and cost assertions unchanged).
  {
    CostModel model = Model();
    plan::PlanPtr plan =
        plan::MakeFilter(plan::MakeSeqScan("r", "r"), Analyze(cheap));
    ASSERT_TRUE(model.Annotate(plan.get()).ok());
    EXPECT_DOUBLE_EQ(plan->est_cost, plan->children[0]->est_cost);
  }

  // With cpu_tuple_cost set, scalar mode charges rows * cost and
  // vectorized mode divides the charge by vector_speedup.
  CostParams params;
  params.cpu_tuple_cost = 0.01;
  params.vectorized = false;
  double scalar_cost = 0.0;
  {
    CostModel model = Model(params);
    plan::PlanPtr plan =
        plan::MakeFilter(plan::MakeSeqScan("r", "r"), Analyze(cheap));
    ASSERT_TRUE(model.Annotate(plan.get()).ok());
    scalar_cost = plan->est_cost - plan->children[0]->est_cost;
    EXPECT_DOUBLE_EQ(scalar_cost, 1000 * 0.01);
  }
  params.vectorized = true;
  {
    CostModel model = Model(params);
    plan::PlanPtr plan =
        plan::MakeFilter(plan::MakeSeqScan("r", "r"), Analyze(cheap));
    ASSERT_TRUE(model.Annotate(plan.get()).ok());
    EXPECT_DOUBLE_EQ(plan->est_cost - plan->children[0]->est_cost,
                     scalar_cost / params.vector_speedup);
  }

  // Expensive filters are charged through est_udf_cost only — the vector
  // knob must not touch them.
  {
    CostModel model = Model(params);
    plan::PlanPtr plan = plan::MakeFilter(
        plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "key")})));
    ASSERT_TRUE(model.Annotate(plan.get()).ok());
    EXPECT_DOUBLE_EQ(plan->est_cost,
                     plan->children[0]->est_cost + plan->est_udf_cost);
  }
}

}  // namespace
}  // namespace ppp::cost
