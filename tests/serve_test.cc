// Serving-layer checks: the statistics-keyed plan cache (hit/miss,
// ANALYZE invalidation, snapshot-identity keying, byte-bounded LRU), SQL
// normalization, the cross-query shared predicate-cache registry, and —
// the load-bearing one — concurrent sessions producing byte-identical
// results with exact engine-wide UDF invocation parity against the
// plan-cache-off baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/shared_caches.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "parser/normalize.h"
#include "serve/plan_cache.h"
#include "serve/session.h"
#include "stats/collector.h"
#include "subquery/rewrite.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() {
    config_.scale = 150;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  std::vector<std::string> QueryTexts() {
    std::vector<std::string> sql;
    for (const workload::BenchmarkQuery& q :
         workload::BenchmarkQueries(config_)) {
      sql.push_back(q.sql);
    }
    return sql;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

// --------------------------------------------------------------------------
// Normalization

TEST(NormalizeTest, WhitespaceAndKeywordCaseDoNotChangeIdentity) {
  auto a = parser::NormalizeSql("SELECT t3.a FROM t3 WHERE t3.a > 5;");
  auto b = parser::NormalizeSql("select   t3.a\nfrom t3   where t3.a>5");
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->text_hash, b->text_hash);
  EXPECT_EQ(a->family_hash, b->family_hash);
}

TEST(NormalizeTest, LiteralsChangeTextHashButNotFamily) {
  auto a = parser::NormalizeSql("SELECT t3.a FROM t3 WHERE t3.a > 5");
  auto b = parser::NormalizeSql("SELECT t3.a FROM t3 WHERE t3.a > 7");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // A plan embeds its constants, so the cache key must distinguish them…
  EXPECT_NE(a->text_hash, b->text_hash);
  // …while the $n-slotted family groups them for observability.
  EXPECT_EQ(a->family_hash, b->family_hash);
  ASSERT_EQ(a->params.size(), 1u);
  ASSERT_EQ(b->params.size(), 1u);
  EXPECT_EQ(a->params[0], "5");
  EXPECT_EQ(b->params[0], "7");
}

TEST(NormalizeTest, IdentifierCaseIsPreserved) {
  auto a = parser::NormalizeSql("SELECT T3.a FROM t3");
  auto b = parser::NormalizeSql("SELECT t3.a FROM t3");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->text_hash, b->text_hash);
}

// --------------------------------------------------------------------------
// PlacementParamsHash

TEST(PlanCacheKeyTest, PlacementKnobsChangeParamsHash) {
  cost::CostParams base;
  const uint64_t h = serve::PlacementParamsHash(base, "migration");
  EXPECT_NE(h, serve::PlacementParamsHash(base, "pushdown"));
  cost::CostParams caching_off = base;
  caching_off.predicate_caching = false;
  EXPECT_NE(h, serve::PlacementParamsHash(caching_off, "migration"));
  cost::CostParams workers = base;
  workers.parallel_workers = 4;
  EXPECT_NE(h, serve::PlacementParamsHash(workers, "migration"));
  EXPECT_EQ(h, serve::PlacementParamsHash(base, "migration"));
}

// --------------------------------------------------------------------------
// Shared predicate-cache registry

TEST(SharedCachesTest, SameIdentitySharesOneCache) {
  exec::SharedPredicateCacheRegistry registry;
  exec::ShardedPredicateCache::Options options;
  const std::string key =
      exec::BuildSharedCacheKey("costly100(t10.ua)", "t10=t10;", options);
  auto a = registry.GetOrCreate(key, options);
  auto b = registry.GetOrCreate(key, options);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.reuses(), 1u);

  const std::string other =
      exec::BuildSharedCacheKey("costly100(t10.ua)", "t10=t9;", options);
  EXPECT_NE(key, other);
  auto c = registry.GetOrCreate(other, options);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(registry.size(), 2u);
}

// --------------------------------------------------------------------------
// Plan cache, session level

TEST_F(ServeTest, RepeatQueryHitsAndAnalyzeInvalidates) {
  serve::SessionManager manager(&db_);
  auto session = manager.CreateSession();
  const std::string sql = QueryTexts()[0];  // Q1: t3 ⋈ t10.

  auto first = session->Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_EQ(manager.plan_cache().entries(), 1u);

  auto second = session->Execute(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(manager.plan_cache().hits(), 1u);
  EXPECT_EQ(second->plan_fingerprint, first->plan_fingerprint);
  EXPECT_EQ(workload::CanonicalResults(second->rows, second->schema),
            workload::CanonicalResults(first->rows, first->schema));

  // ANALYZE of a bound table swaps its statistics snapshot; the catalog
  // listener must drop the entry before the next probe.
  auto analyze = session->Execute("ANALYZE t3");
  ASSERT_TRUE(analyze.ok()) << analyze.status();
  EXPECT_EQ(analyze->analyzed_tables, 1u);
  EXPECT_EQ(manager.plan_cache().entries(), 0u);
  EXPECT_GE(manager.plan_cache().invalidations(), 1u);

  auto third = session->Execute(sql);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->plan_cache_hit);
  EXPECT_EQ(workload::CanonicalResults(third->rows, third->schema),
            workload::CanonicalResults(first->rows, first->schema));
}

TEST_F(ServeTest, AnalyzeOfUnboundTableKeepsEntry) {
  serve::SessionManager manager(&db_);
  auto session = manager.CreateSession();
  const std::string sql = QueryTexts()[0];  // Binds t3 and t10 only.
  ASSERT_TRUE(session->Execute(sql).ok());
  ASSERT_TRUE(session->Execute("ANALYZE t9").ok());
  EXPECT_EQ(manager.plan_cache().entries(), 1u);
  auto again = session->Execute(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);
}

TEST_F(ServeTest, SnapshotIdentityCatchesStatsSwapWithoutListener) {
  // Probe-time epoch validation is the backstop when no listener fired
  // (e.g. stats were swapped through a path that raced the insert). Drive
  // the PlanCache directly: record the epochs, swap stats, probe.
  auto spec = subquery::ParseBindRewrite(QueryTexts()[0], &db_.catalog());
  ASSERT_TRUE(spec.ok()) << spec.status();
  optimizer::Optimizer opt(&db_.catalog(), cost::CostParams{});
  auto optimized = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(optimized.ok());

  serve::PlanCache cache;
  serve::CachedPlan entry;
  entry.plan = std::shared_ptr<const plan::PlanNode>(
      std::move(optimized->plan));
  for (const plan::TableRef& ref : spec->tables) {
    catalog::Table* table = *db_.catalog().GetTable(ref.table_name);
    entry.bindings.emplace_back(ref.alias, ref.table_name);
    entry.stats_epochs.push_back(table->stats_epoch());
  }
  serve::PlanCacheKey key{1, 2};
  cache.Insert(key, std::move(entry));
  EXPECT_NE(cache.Probe(key, db_.catalog()), nullptr);

  catalog::Table* t3 = *db_.catalog().GetTable("t3");
  ASSERT_TRUE(
      stats::AnalyzeTable(t3, stats::AnalyzeOptions::Default()).ok());
  // Same key, new statistics snapshot: the entry must not be served.
  EXPECT_EQ(cache.Probe(key, db_.catalog()), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST_F(ServeTest, DifferentCostParamsGetDifferentSlots) {
  serve::SessionManager manager(&db_);
  auto a = manager.CreateSession();
  serve::SessionOptions options;
  options.cost_params.predicate_caching = false;
  options.exec_params.predicate_caching = false;
  auto b = manager.CreateSession(options);
  const std::string sql = QueryTexts()[0];
  ASSERT_TRUE(a->Execute(sql).ok());
  auto r = b->Execute(sql);
  ASSERT_TRUE(r.ok());
  // Same normalized text, different placement knobs: b must not reuse a's
  // plan (it was optimized under different costs).
  EXPECT_FALSE(r->plan_cache_hit);
  EXPECT_EQ(manager.plan_cache().entries(), 2u);
}

TEST_F(ServeTest, ByteBoundedLruEviction) {
  serve::PlanCache::Options options;
  options.max_bytes = 1;  // Far below one entry: cache keeps exactly one.
  serve::PlanCache cache(options);
  auto spec = subquery::ParseBindRewrite(QueryTexts()[0], &db_.catalog());
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&db_.catalog(), cost::CostParams{});
  for (uint64_t i = 0; i < 4; ++i) {
    auto optimized = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    ASSERT_TRUE(optimized.ok());
    serve::CachedPlan entry;
    entry.plan = std::shared_ptr<const plan::PlanNode>(
        std::move(optimized->plan));
    cache.Insert(serve::PlanCacheKey{i, 0}, std::move(entry));
    EXPECT_EQ(cache.entries(), 1u);
  }
  EXPECT_EQ(cache.evictions(), 3u);
  // Only the newest key survives.
  EXPECT_EQ(cache.Probe(serve::PlanCacheKey{0, 0}, db_.catalog()), nullptr);
  EXPECT_NE(cache.Probe(serve::PlanCacheKey{3, 0}, db_.catalog()), nullptr);
}

TEST_F(ServeTest, EntryBoundLruKeepsHotEntries) {
  serve::PlanCache::Options options;
  options.max_entries = 2;
  serve::PlanCache cache(options);
  auto spec = subquery::ParseBindRewrite(QueryTexts()[0], &db_.catalog());
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&db_.catalog(), cost::CostParams{});
  auto make_entry = [&]() {
    auto optimized = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    EXPECT_TRUE(optimized.ok());
    serve::CachedPlan entry;
    entry.plan = std::shared_ptr<const plan::PlanNode>(
        std::move(optimized->plan));
    return entry;
  };
  cache.Insert(serve::PlanCacheKey{1, 0}, make_entry());
  cache.Insert(serve::PlanCacheKey{2, 0}, make_entry());
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.Probe(serve::PlanCacheKey{1, 0}, db_.catalog()), nullptr);
  cache.Insert(serve::PlanCacheKey{3, 0}, make_entry());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(cache.Probe(serve::PlanCacheKey{1, 0}, db_.catalog()), nullptr);
  EXPECT_EQ(cache.Probe(serve::PlanCacheKey{2, 0}, db_.catalog()), nullptr);
}

TEST_F(ServeTest, PlanCacheDisabledByManagerOption) {
  serve::SessionManager::Options options;
  options.plan_cache_enabled = false;
  serve::SessionManager manager(&db_, options);
  auto session = manager.CreateSession();
  const std::string sql = QueryTexts()[0];
  ASSERT_TRUE(session->Execute(sql).ok());
  auto second = session->Execute(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->plan_cache_hit);
  EXPECT_EQ(manager.plan_cache().entries(), 0u);
}

// --------------------------------------------------------------------------
// Observability plumbing

TEST_F(ServeTest, QueryLogRecordsSessionId) {
  obs::QueryLog::Global().Clear();
  serve::SessionManager manager(&db_);
  auto a = manager.CreateSession();
  auto b = manager.CreateSession();
  ASSERT_TRUE(a->Execute(QueryTexts()[0]).ok());
  ASSERT_TRUE(b->Execute(QueryTexts()[1]).ok());
  const auto records = obs::QueryLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, a->id());
  EXPECT_EQ(records[1].session_id, b->id());
}

TEST_F(ServeTest, SystemTablesAreQueryableThroughASession) {
  serve::SessionManager manager(&db_);
  auto session = manager.CreateSession();
  const std::string sql = QueryTexts()[0];
  ASSERT_TRUE(session->Execute(sql).ok());
  ASSERT_TRUE(session->Execute(sql).ok());

  // The introspection query itself enters the cache before executing, so
  // filter down to the (repeated) Q1 entry by its hit count.
  auto cache_rows = session->Execute(
      "SELECT ppp_plan_cache.text_hash, ppp_plan_cache.hits, "
      "ppp_plan_cache.tables FROM ppp_plan_cache "
      "WHERE ppp_plan_cache.hits >= 1");
  ASSERT_TRUE(cache_rows.ok()) << cache_rows.status();
  ASSERT_EQ(cache_rows->rows.size(), 1u);

  auto session_rows = session->Execute(
      "SELECT ppp_sessions.session_id, ppp_sessions.queries "
      "FROM ppp_sessions WHERE ppp_sessions.active = 1");
  ASSERT_TRUE(session_rows.ok()) << session_rows.status();
  ASSERT_EQ(session_rows->rows.size(), 1u);

  EXPECT_EQ(manager.active_sessions(), 1u);
  const auto rows = manager.SessionRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0].queries, 4u);
  EXPECT_GE(rows[0].plan_cache_hits, 1u);
}

TEST_F(ServeTest, ServeMetricsAreRegistered) {
  serve::SessionManager manager(&db_);
  auto session = manager.CreateSession();
  const std::string sql = QueryTexts()[0];
  ASSERT_TRUE(session->Execute(sql).ok());
  ASSERT_TRUE(session->Execute(sql).ok());
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.counters.count("serve.plan_cache.hits"));
  ASSERT_TRUE(snap.counters.count("serve.plan_cache.misses"));
  ASSERT_TRUE(snap.gauges.count("serve.sessions.active"));
  EXPECT_GT(snap.counters.at("serve.plan_cache.hits"), 0u);
  EXPECT_GT(snap.counters.at("serve.plan_cache.misses"), 0u);
  EXPECT_GE(snap.gauges.at("serve.sessions.active"), 1.0);
}

// --------------------------------------------------------------------------
// Concurrent sessions: correctness + exact invocation parity

TEST_F(ServeTest, ConcurrentSessionsAreByteIdenticalWithExactUdfParity) {
  const std::vector<std::string> queries = QueryTexts();

  // Single-session, plan-cache-off reference answers.
  std::vector<std::vector<std::string>> reference;
  {
    serve::SessionManager::Options options;
    options.plan_cache_enabled = false;
    serve::SessionManager manager(&db_, options);
    auto session = manager.CreateSession();
    for (const std::string& sql : queries) {
      auto r = session->Execute(sql);
      ASSERT_TRUE(r.ok()) << r.status();
      reference.push_back(workload::CanonicalResults(r->rows, r->schema));
    }
  }

  // One config = fresh manager, N session threads, each runs Q1..Q5.
  // Returns the engine-wide UDF invocation total (summed from the query
  // log, whose per-record counts are per-context exact).
  auto run_config = [&](size_t n_sessions, bool plan_cache) -> uint64_t {
    obs::QueryLog::Global().Clear();
    serve::SessionManager::Options options;
    options.plan_cache_enabled = plan_cache;
    serve::SessionManager manager(&db_, options);
    std::vector<std::unique_ptr<serve::Session>> sessions;
    for (size_t i = 0; i < n_sessions; ++i) {
      sessions.push_back(manager.CreateSession());
    }
    std::vector<std::thread> threads;
    std::vector<std::string> errors(n_sessions);
    for (size_t i = 0; i < n_sessions; ++i) {
      threads.emplace_back([&, i]() {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto r = sessions[i]->Execute(queries[q]);
          if (!r.ok()) {
            errors[i] = r.status().ToString();
            return;
          }
          if (workload::CanonicalResults(r->rows, r->schema) !=
              reference[q]) {
            errors[i] = "results diverge on " + queries[q];
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const std::string& e : errors) EXPECT_EQ(e, "");
    uint64_t udf_total = 0;
    for (const obs::QueryLogRecord& r : obs::QueryLog::Global().Snapshot()) {
      udf_total += r.udf_invocations;
    }
    EXPECT_EQ(obs::QueryLog::Global().total(),
              n_sessions * queries.size());
    return udf_total;
  };

  for (size_t n : {1u, 4u, 8u}) {
    const uint64_t with_cache = run_config(n, true);
    const uint64_t without_cache = run_config(n, false);
    // The plan cache changes where plans come from, never what executes:
    // invocation totals must match exactly (shared predicate caches make
    // them deterministic under concurrency via pending-entry dedup).
    EXPECT_EQ(with_cache, without_cache) << n << " sessions";
    EXPECT_GT(with_cache, 0u);
  }
}

}  // namespace
}  // namespace ppp
