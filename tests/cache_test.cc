// Tests for the §5.1 caching design space: predicate-level caching
// (Montage), function-level caching ([Jhi88]), bounded caches with FIFO
// replacement, and the adaptive self-disable ("planned for Montage").

#include <gtest/gtest.h>

#include "common/sharded_memo.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::exec {
namespace {

using expr::Call;
using expr::Col;
using types::Tuple;
using types::TypeId;
using types::Value;

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : pool_(&disk_, 64), catalog_(&pool_) {
    // 1000 rows; grp cycles over 20 values, uniq is unique.
    auto table = catalog_.CreateTable(
        "t", {{"uniq", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    EXPECT_TRUE(table.ok());
    for (int64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE((*table)->Insert(Tuple({Value(i), Value(i % 20)})).ok());
    }
    EXPECT_TRUE((*table)->Analyze().ok());
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("f", 10, 0.5).ok());
    // A second, non-cacheable function.
    catalog::FunctionDef nc;
    nc.name = "volatile_f";
    nc.cost_per_call = 10;
    nc.selectivity = 0.5;
    nc.cacheable = false;
    nc.impl = [](const std::vector<Value>& args) {
      return Value(args[0].AsInt64() % 2 == 0);
    };
    EXPECT_TRUE(catalog_.functions().Register(std::move(nc)).ok());

    binding_ = {{"t", *catalog_.GetTable("t")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  /// Runs Filter(f(t.<col>)) over the table under `params`; returns stats.
  ExecStats RunFilter(const std::string& col, const ExecParams& params,
                      const std::string& fn = "f") {
    ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.binding = binding_;
    ctx.params = params;
    plan::PlanPtr plan = plan::MakeFilter(
        plan::MakeSeqScan("t", "t"), Analyze(Call(fn, {Col("t", col)})));
    ExecStats stats;
    auto rows = ExecutePlan(*plan, &ctx, &stats);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return stats;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
};

TEST_F(CacheTest, PredicateModeDeduplicates) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  EXPECT_EQ(RunFilter("grp", params).invocations.at("f"), 20u);
}

TEST_F(CacheTest, FunctionModeDeduplicates) {
  ExecParams params;
  params.cache_mode = CacheMode::kFunction;
  EXPECT_EQ(RunFilter("grp", params).invocations.at("f"), 20u);
}

TEST_F(CacheTest, NoneModeEvaluatesEverything) {
  ExecParams params;
  params.cache_mode = CacheMode::kNone;
  // kNone disables even with the master switch on.
  EXPECT_EQ(RunFilter("grp", params).invocations.at("f"), 1000u);
}

TEST_F(CacheTest, MasterSwitchOffDisablesAllModes) {
  for (const CacheMode mode :
       {CacheMode::kPredicate, CacheMode::kFunction}) {
    ExecParams params;
    params.predicate_caching = false;
    params.cache_mode = mode;
    EXPECT_EQ(RunFilter("grp", params).invocations.at("f"), 1000u);
  }
}

TEST_F(CacheTest, AllModesProduceIdenticalResults) {
  std::vector<uint64_t> row_counts;
  for (const CacheMode mode :
       {CacheMode::kNone, CacheMode::kPredicate, CacheMode::kFunction}) {
    ExecParams params;
    params.cache_mode = mode;
    row_counts.push_back(RunFilter("grp", params).output_rows);
  }
  EXPECT_EQ(row_counts[0], row_counts[1]);
  EXPECT_EQ(row_counts[0], row_counts[2]);
}

TEST_F(CacheTest, BoundedPredicateCacheStillCorrect) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.cache_max_entries = 4;  // Far below the 20 distinct bindings.
  ExecParams unbounded;
  const ExecStats bounded_stats = RunFilter("grp", params);
  const ExecStats unbounded_stats = RunFilter("grp", unbounded);
  EXPECT_EQ(bounded_stats.output_rows, unbounded_stats.output_rows);
  // A 4-entry FIFO over a cycling 20-value stream thrashes: every probe
  // misses, so the invocation count approaches the no-cache count.
  EXPECT_GT(bounded_stats.invocations.at("f"),
            unbounded_stats.invocations.at("f"));
}

TEST_F(CacheTest, BoundedFunctionCacheEvicts) {
  ExecParams params;
  params.cache_mode = CacheMode::kFunction;
  params.cache_max_entries = 4;
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.binding = binding_;
  ctx.params = params;
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("t", "t"), Analyze(Call("f", {Col("t", "grp")})));
  ExecStats stats;
  ASSERT_TRUE(ExecutePlan(*plan, &ctx, &stats).ok());
  EXPECT_LE(ctx.function_cache_storage.entries(), 4u);
  EXPECT_GT(ctx.function_cache_storage.evictions(), 0u);
}

TEST_F(CacheTest, NonCacheableFunctionNeverCached) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  EXPECT_EQ(RunFilter("grp", params, "volatile_f").invocations
                .at("volatile_f"),
            1000u);
  params.cache_mode = CacheMode::kFunction;
  EXPECT_EQ(RunFilter("grp", params, "volatile_f").invocations
                .at("volatile_f"),
            1000u);
}

TEST_F(CacheTest, AdaptiveCachingDisablesOnUniqueInputs) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.adaptive_caching = true;
  // All 1000 bindings distinct: the cache sees zero hits, disables itself
  // after the probe window, and everything still evaluates exactly once.
  const ExecStats stats = RunFilter("uniq", params);
  EXPECT_EQ(stats.invocations.at("f"), 1000u);
  EXPECT_EQ(stats.output_rows, RunFilter("uniq", ExecParams{}).output_rows);
}

TEST_F(CacheTest, AdaptiveCachingKeepsUsefulCaches) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.adaptive_caching = true;
  // 20 distinct bindings: plenty of hits, cache must stay on.
  EXPECT_EQ(RunFilter("grp", params).invocations.at("f"), 20u);
}

TEST_F(CacheTest, AdaptiveProbeWindowIsConfigurable) {
  // With a window larger than the input, the zero-hit check never fires
  // and the (useless) cache keeps absorbing entries: same invocation count
  // but one entry per distinct binding remains live.
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.adaptive_caching = true;
  params.adaptive_probe_window = 100000;
  EXPECT_EQ(RunFilter("uniq", params).invocations.at("f"), 1000u);

  // A tiny window disables almost immediately on unique inputs.
  params.adaptive_probe_window = 8;
  EXPECT_EQ(RunFilter("uniq", params).invocations.at("f"), 1000u);
}

TEST_F(CacheTest, AdaptiveWindowHonoredInFunctionMode) {
  // The adaptive self-disable applies to the [Jhi88] function cache too:
  // unique inputs, zero hits, cache disables after the window and the
  // query still evaluates every tuple exactly once.
  ExecParams params;
  params.cache_mode = CacheMode::kFunction;
  params.adaptive_caching = true;
  params.adaptive_probe_window = 64;
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.binding = binding_;
  ctx.params = params;
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("t", "t"), Analyze(Call("f", {Col("t", "uniq")})));
  ExecStats stats;
  ASSERT_TRUE(ExecutePlan(*plan, &ctx, &stats).ok());
  EXPECT_EQ(stats.invocations.at("f"), 1000u);
  EXPECT_TRUE(ctx.function_cache_storage.disabled());
  // Entries were freed on disable (the footnote-4 swap concern).
  EXPECT_EQ(ctx.function_cache_storage.entries(), 0u);
}

TEST_F(CacheTest, ShardedCacheEvictsUnderParallelConfig) {
  // parallel_workers > 1 shards the predicate cache; the FIFO bound still
  // holds across shards and results stay correct.
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.cache_max_entries = 4;
  params.parallel_workers = 4;
  params.batch_size = 64;
  const ExecStats sharded = RunFilter("grp", params);
  const ExecStats unbounded = RunFilter("grp", ExecParams{});
  EXPECT_EQ(sharded.output_rows, unbounded.output_rows);
  EXPECT_GT(sharded.invocations.at("f"), unbounded.invocations.at("f"));
}

TEST_F(CacheTest, ShardedAdaptiveDisableUnderParallelConfig) {
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  params.adaptive_caching = true;
  params.parallel_workers = 4;
  params.batch_size = 128;
  const ExecStats stats = RunFilter("uniq", params);
  // Every distinct binding evaluated exactly once even while the cache
  // disables itself mid-run: pending-entry dedup keeps counters exact.
  EXPECT_EQ(stats.invocations.at("f"), 1000u);
  EXPECT_EQ(stats.output_rows, RunFilter("uniq", ExecParams{}).output_rows);
}

TEST_F(CacheTest, CachedPredicateAccessors) {
  ExecParams params;
  auto pred = CachedPredicate::Bind(
      Analyze(Call("f", {Col("t", "grp")})),
      (*catalog_.GetTable("t"))->RowSchemaForAlias("t"), catalog_, params);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred->cache_enabled());
  expr::EvalContext eval;
  Tuple row({Value(int64_t{1}), Value(int64_t{5})});
  pred->Eval(row, &eval);
  pred->Eval(row, &eval);
  EXPECT_EQ(pred->cache_entries(), 1u);
  EXPECT_EQ(pred->cache_hits(), 1u);
  EXPECT_EQ(eval.InvocationsOf("f"), 1u);
}

TEST_F(CacheTest, LruKeepsHotKeysWhereFifoEvictsThem) {
  // Probe pattern: one hot key touched between every pair of cold keys.
  // FIFO evicts by insertion order, so the hot key ages out and recomputes;
  // LRU refreshes it on every hit, so it is computed exactly once.
  const auto run = [](bool lru) {
    common::ShardedMemo<bool>::Options options;
    options.max_entries = 4;
    options.lru = lru;
    common::ShardedMemo<bool> memo(options);
    size_t hot_computes = 0;
    for (int i = 0; i < 64; ++i) {
      memo.GetOrCompute("hot", [&] {
        ++hot_computes;
        return true;
      });
      memo.GetOrCompute("cold" + std::to_string(i), [] { return false; });
    }
    return hot_computes;
  };
  EXPECT_EQ(run(/*lru=*/true), 1u);
  EXPECT_GT(run(/*lru=*/false), 1u);
}

TEST_F(CacheTest, ByteBoundTriggersEvictions) {
  common::ShardedMemo<bool>::Options options;
  // Room for roughly four entries of ~(key + overhead) bytes.
  options.max_bytes =
      4 * (8 + common::ShardedMemo<bool>::kEntryOverhead);
  common::ShardedMemo<bool> memo(options);
  for (int i = 0; i < 100; ++i) {
    memo.GetOrCompute("key" + std::to_string(i), [] { return true; });
    EXPECT_LE(memo.approx_bytes(), options.max_bytes);
  }
  EXPECT_GT(memo.evictions(), 0u);
  EXPECT_LT(memo.entries(), 100u);
}

TEST_F(CacheTest, ByteBoundedPredicateCacheEndToEnd) {
  obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter("exec.pred_cache.evictions");
  const uint64_t before = evictions->value();
  ExecParams params;
  params.cache_mode = CacheMode::kPredicate;
  // Far below the 20 distinct 9-byte serialized bindings: must evict.
  params.cache_max_bytes = 300;
  const ExecStats bounded = RunFilter("grp", params);
  EXPECT_EQ(bounded.output_rows, RunFilter("grp", ExecParams{}).output_rows);
  EXPECT_GT(evictions->value(), before);
}

TEST_F(CacheTest, LruPredicateCacheEndToEnd) {
  // LRU with a bound below the distinct-binding count stays correct; with
  // a bound above it, LRU and FIFO behave identically (no evictions).
  ExecParams lru;
  lru.cache_mode = CacheMode::kPredicate;
  lru.cache_max_entries = 8;
  lru.cache_lru = true;
  const ExecStats bounded = RunFilter("grp", lru);
  EXPECT_EQ(bounded.output_rows, RunFilter("grp", ExecParams{}).output_rows);

  lru.cache_max_entries = 64;
  EXPECT_EQ(RunFilter("grp", lru).invocations.at("f"), 20u);
}

TEST_F(CacheTest, CheapPredicateNotCached) {
  ExecParams params;
  auto pred = CachedPredicate::Bind(
      Analyze(expr::Eq(Col("t", "grp"), expr::Int(1))),
      (*catalog_.GetTable("t"))->RowSchemaForAlias("t"), catalog_, params);
  ASSERT_TRUE(pred.ok());
  EXPECT_FALSE(pred->cache_enabled());
}

}  // namespace
}  // namespace ppp::exec
