#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::parser {
namespace {

TEST(ParserTest, SelectStar) {
  auto p = ParseSelect("SELECT * FROM emp");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->select_star);
  ASSERT_EQ(p->tables.size(), 1u);
  EXPECT_EQ(p->tables[0].table_name, "emp");
  EXPECT_EQ(p->tables[0].alias, "emp");
  EXPECT_EQ(p->where, nullptr);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto p = ParseSelect("SELECT * FROM emp AS e, dept d");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->tables.size(), 2u);
  EXPECT_EQ(p->tables[0].alias, "e");
  EXPECT_EQ(p->tables[1].alias, "d");
  EXPECT_EQ(p->tables[1].table_name, "dept");
}

TEST(ParserTest, WhereWithAndChain) {
  auto p = ParseSelect(
      "SELECT * FROM r, s WHERE r.a = s.b AND costly(r.c) AND r.d < 5");
  ASSERT_TRUE(p.ok());
  ASSERT_NE(p->where, nullptr);
  EXPECT_EQ(expr::SplitConjuncts(p->where).size(), 3u);
}

TEST(ParserTest, SelectListWithNames) {
  auto p = ParseSelect("SELECT name, gpa AS grade FROM student");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->select_star);
  ASSERT_EQ(p->select_list.size(), 2u);
  EXPECT_EQ(p->select_names[0], "name");
  EXPECT_EQ(p->select_names[1], "grade");
}

TEST(ParserTest, OperatorPrecedence) {
  // AND binds tighter than OR; comparison tighter than AND.
  auto p = ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->where->kind, expr::ExprKind::kOr);
  EXPECT_EQ(p->where->children[1]->kind, expr::ExprKind::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto p = ParseSelect("SELECT * FROM t WHERE a + 2 * 3 = 7");
  ASSERT_TRUE(p.ok());
  const expr::Expr& cmp = *p->where;
  ASSERT_EQ(cmp.kind, expr::ExprKind::kComparison);
  // Left side is a + (2*3).
  const expr::Expr& add = *cmp.children[0];
  ASSERT_EQ(add.kind, expr::ExprKind::kArithmetic);
  EXPECT_EQ(add.arith_op, expr::ArithOp::kAdd);
  EXPECT_EQ(add.children[1]->kind, expr::ExprKind::kArithmetic);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto p = ParseSelect("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->where->kind, expr::ExprKind::kAnd);
}

TEST(ParserTest, ComparisonOperators) {
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    auto p = ParseSelect(std::string("SELECT * FROM t WHERE a ") + op +
                         " 1");
    ASSERT_TRUE(p.ok()) << op << ": " << p.status();
    EXPECT_EQ(p->where->kind, expr::ExprKind::kComparison) << op;
  }
}

TEST(ParserTest, FunctionCalls) {
  auto p = ParseSelect(
      "SELECT * FROM t WHERE match(t.a, t.b) AND flag() AND NOT f(1 + 2)");
  ASSERT_TRUE(p.ok());
  const std::vector<expr::ExprPtr> conj = expr::SplitConjuncts(p->where);
  ASSERT_EQ(conj.size(), 3u);
  EXPECT_EQ(conj[0]->function_name, "match");
  EXPECT_EQ(conj[0]->children.size(), 2u);
  EXPECT_EQ(conj[1]->children.size(), 0u);
  EXPECT_EQ(conj[2]->kind, expr::ExprKind::kNot);
}

TEST(ParserTest, Literals) {
  auto p = ParseSelect(
      "SELECT * FROM t WHERE a = 42 AND b = 2.5 AND c = 'red' AND d = -3");
  ASSERT_TRUE(p.ok());
  const std::vector<expr::ExprPtr> conj = expr::SplitConjuncts(p->where);
  EXPECT_EQ(conj[0]->children[1]->constant.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(conj[1]->children[1]->constant.AsDouble(), 2.5);
  EXPECT_EQ(conj[2]->children[1]->constant.AsString(), "red");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSelect("select * from t where a = 1").ok());
  EXPECT_TRUE(ParseSelect("SeLeCt * FrOm t WhErE a = 1").ok());
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("SELECT * FROM t;").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a = ").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t extra garbage =").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE f(a").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE 'unterminated").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a @ 1").ok());
}

TEST(ParserTest, AnalyzeStatement) {
  // Bare ANALYZE: all tables (empty list).
  auto all = ParseStatement("ANALYZE");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->kind, StatementKind::kAnalyze);
  EXPECT_TRUE(all->analyze_tables.empty());

  auto one = ParseStatement("analyze t3;");
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(one->kind, StatementKind::kAnalyze);
  ASSERT_EQ(one->analyze_tables.size(), 1u);
  EXPECT_EQ(one->analyze_tables[0], "t3");

  auto many = ParseStatement("ANALYZE t3, t6 ,t10");
  ASSERT_TRUE(many.ok()) << many.status();
  ASSERT_EQ(many->analyze_tables.size(), 3u);
  EXPECT_EQ(many->analyze_tables[0], "t3");
  EXPECT_EQ(many->analyze_tables[1], "t6");
  EXPECT_EQ(many->analyze_tables[2], "t10");
}

TEST(ParserTest, AnalyzeErrors) {
  // Dangling comma, non-identifier operand, trailing junk.
  EXPECT_FALSE(ParseStatement("ANALYZE t3,").ok());
  EXPECT_FALSE(ParseStatement("ANALYZE 42").ok());
  EXPECT_FALSE(ParseStatement("ANALYZE t3 t6").ok());
  // "ANALYZER" is an identifier, not the keyword: parses as a (bad) SELECT.
  EXPECT_FALSE(ParseStatement("ANALYZER").ok());
}

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : pool_(&disk_, 64), catalog_(&pool_) {
    auto emp = catalog_.CreateTable("emp", {{"id", types::TypeId::kInt64},
                                            {"dept", types::TypeId::kInt64}});
    auto dept = catalog_.CreateTable("dept",
                                     {{"id", types::TypeId::kInt64},
                                      {"name", types::TypeId::kString}});
    EXPECT_TRUE(emp.ok());
    EXPECT_TRUE(dept.ok());
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("pricey", 10, 0.5).ok());
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(BinderTest, QualifiesUnambiguousColumns) {
  auto spec = ParseAndBind(
      "SELECT name FROM emp, dept WHERE emp.dept = dept.id AND pricey(name)",
      catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  // `name` resolves to dept.name everywhere.
  EXPECT_EQ(spec->select_list[0]->table, "dept");
  ASSERT_EQ(spec->conjuncts.size(), 2u);
  EXPECT_EQ(spec->conjuncts[1]->children[0]->table, "dept");
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  auto spec = ParseAndBind("SELECT * FROM emp, dept WHERE id = 1", catalog_);
  EXPECT_FALSE(spec.ok());
}

TEST_F(BinderTest, UnknownTableColumnFunctionFail) {
  EXPECT_FALSE(ParseAndBind("SELECT * FROM nope", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM emp WHERE emp.nope = 1", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM emp WHERE zz.id = 1", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM emp WHERE nofn(emp.id)", catalog_).ok());
}

TEST_F(BinderTest, DuplicateAliasFails) {
  EXPECT_FALSE(ParseAndBind("SELECT * FROM emp e, dept e", catalog_).ok());
}

TEST_F(BinderTest, SelfJoinWithAliases) {
  auto spec = ParseAndBind(
      "SELECT * FROM emp a, emp b WHERE a.dept = b.dept", catalog_);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->tables.size(), 2u);
  EXPECT_EQ(spec->conjuncts.size(), 1u);
}

TEST_F(BinderTest, WhereSplitIntoConjuncts) {
  auto spec = ParseAndBind(
      "SELECT * FROM emp WHERE emp.id = 1 AND emp.dept = 2 AND "
      "pricey(emp.id)",
      catalog_);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->conjuncts.size(), 3u);
}

}  // namespace
}  // namespace ppp::parser
