#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::exec {
namespace {

using expr::Call;
using expr::Col;
using expr::Eq;
using expr::Int;
using types::Tuple;
using types::TypeId;
using types::Value;

/// r: 200 rows (key unique, grp = key % 10), s: 500 rows (key unique,
/// grp = key % 25), with indexes on key.
class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : pool_(&disk_, 64), catalog_(&pool_) {
    MakeTable("r", 200, 10);
    MakeTable("s", 500, 25);
    EXPECT_TRUE(
        catalog_.functions().RegisterCostlyPredicate("costly", 100, 0.5)
            .ok());
    binding_ = {{"r", *catalog_.GetTable("r")},
                {"s", *catalog_.GetTable("s")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
    ctx_.catalog = &catalog_;
    ctx_.binding = binding_;
  }

  void MakeTable(const std::string& name, int64_t rows, int64_t groups) {
    auto table = catalog_.CreateTable(
        name, {{"key", TypeId::kInt64}, {"grp", TypeId::kInt64}});
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)->Insert(Tuple({Value(i), Value(i % groups)})).ok());
    }
    ASSERT_TRUE((*table)->CreateIndex("key").ok());
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  std::vector<Tuple> Run(const plan::PlanNode& plan, ExecStats* stats) {
    auto rows = ExecutePlan(plan, &ctx_, stats);
    EXPECT_TRUE(rows.ok()) << rows.status();
    return std::move(rows).value();
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
  ExecContext ctx_;
};

TEST_F(ExecTest, SeqScanReturnsAllRows) {
  pool_.FlushAll();
  pool_.EvictAll();  // Cold start so the scan actually reads pages.
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan::MakeSeqScan("r", "r"), &stats);
  EXPECT_EQ(rows.size(), 200u);
  EXPECT_EQ(stats.output_rows, 200u);
  EXPECT_GT(stats.io.TotalReads(), 0u);
}

TEST_F(ExecTest, IndexScanFetchesExactMatches) {
  plan::PlanPtr plan =
      plan::MakeIndexScan("s", "s", "key", Value(int64_t{123}),
                          Analyze(Eq(Col("s", "key"), Int(123))));
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan, &stats);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 123);
}

TEST_F(ExecTest, IndexScanMissingKeyReturnsNothing) {
  plan::PlanPtr plan =
      plan::MakeIndexScan("s", "s", "key", Value(int64_t{100000}),
                          Analyze(Eq(Col("s", "key"), Int(100000))));
  ExecStats stats;
  EXPECT_TRUE(Run(*plan, &stats).empty());
}

TEST_F(ExecTest, FilterKeepsOnlyPassing) {
  plan::PlanPtr plan = plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                                        Analyze(Eq(Col("r", "grp"), Int(3))));
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan, &stats);
  EXPECT_EQ(rows.size(), 20u);
  for (const Tuple& t : rows) EXPECT_EQ(t.Get(1).AsInt64(), 3);
}

TEST_F(ExecTest, FilterCountsUdfInvocations) {
  ctx_.params.predicate_caching = false;
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "key")})));
  ExecStats stats;
  Run(*plan, &stats);
  EXPECT_EQ(stats.invocations.at("costly"), 200u);
}

TEST_F(ExecTest, PredicateCacheDeduplicatesInvocations) {
  ctx_.params.predicate_caching = true;
  // Only 10 distinct grp values: at most 10 invocations.
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "grp")})));
  ExecStats stats;
  Run(*plan, &stats);
  EXPECT_EQ(stats.invocations.at("costly"), 10u);
}

TEST_F(ExecTest, CacheDisabledEvaluatesEveryTuple) {
  ctx_.params.predicate_caching = false;
  plan::PlanPtr plan = plan::MakeFilter(
      plan::MakeSeqScan("r", "r"), Analyze(Call("costly", {Col("r", "grp")})));
  ExecStats stats;
  Run(*plan, &stats);
  EXPECT_EQ(stats.invocations.at("costly"), 200u);
}

plan::PlanPtr TwoTableJoin(plan::JoinMethod method,
                           expr::PredicateInfo pred) {
  return plan::MakeJoin(method, plan::MakeSeqScan("r", "r"),
                        plan::MakeSeqScan("s", "s"), std::move(pred));
}

TEST_F(ExecTest, AllJoinMethodsAgree) {
  const expr::PredicateInfo pred = Analyze(Eq(Col("r", "key"), Col("s", "key")));
  std::vector<std::vector<std::string>> results;
  for (const plan::JoinMethod method :
       {plan::JoinMethod::kNestLoop, plan::JoinMethod::kIndexNestLoop,
        plan::JoinMethod::kMerge, plan::JoinMethod::kHash}) {
    plan::PlanPtr plan = TwoTableJoin(method, pred);
    ExecStats stats;
    std::vector<Tuple> rows = Run(*plan, &stats);
    EXPECT_EQ(rows.size(), 200u) << plan::JoinMethodName(method);
    std::vector<std::string> canon;
    for (const Tuple& t : rows) canon.push_back(t.Serialize());
    std::sort(canon.begin(), canon.end());
    results.push_back(std::move(canon));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "method " << i;
  }
}

TEST_F(ExecTest, JoinOnDuplicatedKeysProducesAllPairs) {
  // r.grp (10 groups of 20) x s.grp (25 groups of 20, only 10 overlap).
  const expr::PredicateInfo pred = Analyze(Eq(Col("r", "grp"), Col("s", "grp")));
  for (const plan::JoinMethod method :
       {plan::JoinMethod::kNestLoop, plan::JoinMethod::kMerge,
        plan::JoinMethod::kHash}) {
    plan::PlanPtr plan = TwoTableJoin(method, pred);
    ExecStats stats;
    // 10 shared groups * 20 r-rows * 20 s-rows.
    EXPECT_EQ(Run(*plan, &stats).size(), 4000u)
        << plan::JoinMethodName(method);
  }
}

TEST_F(ExecTest, CrossProductViaNestLoopWithoutPredicate) {
  plan::PlanPtr plan = plan::MakeJoin(
      plan::JoinMethod::kNestLoop, plan::MakeSeqScan("r", "r"),
      plan::MakeSeqScan("s", "s"), expr::PredicateInfo{});
  ExecStats stats;
  EXPECT_EQ(Run(*plan, &stats).size(), 200u * 500u);
}

TEST_F(ExecTest, NestLoopRescansChargeIo) {
  const expr::PredicateInfo pred = Analyze(Eq(Col("r", "key"), Col("s", "key")));
  plan::PlanPtr plan = TwoTableJoin(plan::JoinMethod::kNestLoop, pred);
  ExecStats stats;
  Run(*plan, &stats);
  // 200 outer tuples x ~8 pages of s per rescan >> single-scan I/O. The
  // pool (64 pages) holds s (~8 pages), so rescans mostly hit; at minimum
  // buffer hits must reflect the rescan traffic.
  EXPECT_GT(stats.io.buffer_hits + stats.io.TotalReads(), 200u * 5u);
}

TEST_F(ExecTest, IndexNestLoopProbesPerOuterTuple) {
  const expr::PredicateInfo pred = Analyze(Eq(Col("r", "key"), Col("s", "key")));
  plan::PlanPtr plan = TwoTableJoin(plan::JoinMethod::kIndexNestLoop, pred);
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan, &stats);
  EXPECT_EQ(rows.size(), 200u);
  for (const Tuple& t : rows) {
    EXPECT_EQ(t.Get(0).AsInt64(), t.Get(2).AsInt64());  // r.key == s.key.
  }
}

TEST_F(ExecTest, MergeAndHashJoinsRequireSimpleEquiJoin) {
  expr::PredicateInfo pred =
      Analyze(Call("costly", {Col("r", "key"), Col("s", "key")}));
  plan::PlanPtr plan = TwoTableJoin(plan::JoinMethod::kHash, pred);
  auto rows = ExecutePlan(*plan, &ctx_, nullptr);
  EXPECT_FALSE(rows.ok());
}

TEST_F(ExecTest, ExpensivePrimaryJoinViaNestLoop) {
  ctx_.params.predicate_caching = false;
  expr::PredicateInfo pred =
      Analyze(Call("costly", {Col("r", "grp"), Col("s", "grp")}));
  plan::PlanPtr plan = plan::MakeJoin(
      plan::JoinMethod::kNestLoop,
      plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                       Analyze(Eq(Col("r", "key"), Int(1)))),
      plan::MakeSeqScan("s", "s"), pred);
  ExecStats stats;
  Run(*plan, &stats);
  // One outer tuple × 500 inner tuples.
  EXPECT_EQ(stats.invocations.at("costly"), 500u);
}

TEST_F(ExecTest, SortOrdersByColumn) {
  plan::PlanPtr plan = plan::MakeSort(plan::MakeSeqScan("r", "r"), "r.grp");
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan, &stats);
  ASSERT_EQ(rows.size(), 200u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].Get(1).AsInt64(), rows[i].Get(1).AsInt64());
  }
}

TEST_F(ExecTest, ProjectComputesExpressions) {
  plan::PlanPtr plan = plan::MakeProject(
      plan::MakeSeqScan("r", "r"),
      {expr::Arith(expr::ArithOp::kAdd, Col("r", "key"), Int(1000)),
       Col("r", "grp")},
      {"shifted", "grp"});
  ExecStats stats;
  const std::vector<Tuple> rows = Run(*plan, &stats);
  ASSERT_EQ(rows.size(), 200u);
  EXPECT_EQ(rows[0].NumValues(), 2u);
  EXPECT_GE(rows[0].Get(0).AsInt64(), 1000);
}

TEST_F(ExecTest, MaterializeReplaysWithoutReexecution) {
  ctx_.params.predicate_caching = false;
  // Materialized expensive filter as NLJ inner: the filter runs once.
  plan::PlanPtr inner = plan::MakeMaterialize(plan::MakeFilter(
      plan::MakeSeqScan("s", "s"), Analyze(Call("costly", {Col("s", "key")}))));
  plan::PlanPtr plan = plan::MakeJoin(
      plan::JoinMethod::kNestLoop, plan::MakeSeqScan("r", "r"),
      std::move(inner), Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ExecStats stats;
  Run(*plan, &stats);
  EXPECT_EQ(stats.invocations.at("costly"), 500u);  // Not 200 x 500.
}

TEST_F(ExecTest, PipelinedNestLoopReexecutesInnerFilterButCacheAbsorbs) {
  ctx_.params.predicate_caching = true;
  plan::PlanPtr inner = plan::MakeFilter(
      plan::MakeSeqScan("s", "s"), Analyze(Call("costly", {Col("s", "key")})));
  plan::PlanPtr plan = plan::MakeJoin(
      plan::JoinMethod::kNestLoop, plan::MakeSeqScan("r", "r"),
      std::move(inner), Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  ExecStats stats;
  Run(*plan, &stats);
  // 200 rescans of the filter over 500 tuples, but only 500 distinct
  // bindings: the cache absorbs the rest (paper §5.1 / footnote 4).
  EXPECT_EQ(stats.invocations.at("costly"), 500u);
}

TEST_F(ExecTest, BuildExecutorFailsOnBadPlans) {
  // INLJ with non-scan inner.
  plan::PlanPtr bad = plan::MakeJoin(
      plan::JoinMethod::kIndexNestLoop, plan::MakeSeqScan("r", "r"),
      plan::MakeFilter(plan::MakeSeqScan("s", "s"),
                       Analyze(Eq(Col("s", "grp"), Int(1)))),
      Analyze(Eq(Col("r", "key"), Col("s", "key"))));
  EXPECT_FALSE(BuildExecutor(*bad, &ctx_).ok());

  // Sort on a malformed column spec.
  plan::PlanPtr bad_sort =
      plan::MakeSort(plan::MakeSeqScan("r", "r"), "nodot");
  EXPECT_FALSE(BuildExecutor(*bad_sort, &ctx_).ok());

  // Scan of an unbound alias.
  plan::PlanPtr bad_scan = plan::MakeSeqScan("zz", "zz");
  EXPECT_FALSE(BuildExecutor(*bad_scan, &ctx_).ok());
}

TEST(TupleConcatTest, MoveConcatStealsPayloadStorage) {
  // The hash-join probe-passthrough emits its last match for an outer
  // tuple via Concat(std::move(outer), inner): the outer values must move,
  // not copy. Pin it by string payload pointer identity (well past SSO).
  Tuple left({Value(std::string(128, 'x')), Value(int64_t{1})});
  const char* payload = left.Get(0).AsString().data();
  const Tuple right({Value(int64_t{2}), Value("r")});

  const Tuple out = Tuple::Concat(std::move(left), right);
  ASSERT_EQ(out.NumValues(), 4u);
  EXPECT_EQ(out.Get(0).AsString().data(), payload);
  EXPECT_EQ(out.Get(1).AsInt64(), 1);
  EXPECT_EQ(out.Get(2).AsInt64(), 2);
  EXPECT_EQ(out.Get(3).AsString(), "r");
}

}  // namespace
}  // namespace ppp::exec
