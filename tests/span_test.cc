#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "subquery/rewrite.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

/// Every test here mutates the process-global tracer; scope its state.
class TracerGuard {
 public:
  TracerGuard() {
    obs::SpanTracer::Global().Clear();
    obs::SpanTracer::Global().set_enabled(true);
  }
  ~TracerGuard() {
    obs::SpanTracer::Global().set_enabled(false);
    obs::SpanTracer::Global().Clear();
    obs::SpanTracer::Global().set_max_events(1u << 20);
  }
};

bool HasSpan(const std::vector<obs::SpanEvent>& events,
             const std::string& cat, const std::string& name_prefix) {
  for (const obs::SpanEvent& e : events) {
    if (e.cat == cat && e.name.rfind(name_prefix, 0) == 0) return true;
  }
  return false;
}

TEST(SpanTracerTest, DisabledTracerRecordsNothing) {
  obs::SpanTracer& tracer = obs::SpanTracer::Global();
  tracer.Clear();
  tracer.set_enabled(false);
  {
    obs::Span span("test", "noop");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(SpanTracerTest, EnabledSpanRecordsIntervalWithArgs) {
  TracerGuard guard;
  {
    obs::Span span("test", "work");
    span.AddArg("k", "v");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_GE(events[0].dur_us, 1000.0);
  EXPECT_GE(events[0].ts_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "k");
  EXPECT_EQ(events[0].args[0].second, "v");
}

TEST(SpanTracerTest, EndIsIdempotentAndMoveTransfersOwnership) {
  TracerGuard guard;
  obs::Span span("test", "a");
  obs::Span moved = std::move(span);
  moved.End();
  moved.End();
  EXPECT_EQ(obs::SpanTracer::Global().size(), 1u);
}

TEST(SpanTracerTest, BufferCapCountsDroppedSpans) {
  TracerGuard guard;
  obs::SpanTracer::Global().set_max_events(2);
  for (int i = 0; i < 5; ++i) {
    obs::Span span("test", "s" + std::to_string(i));
  }
  EXPECT_EQ(obs::SpanTracer::Global().size(), 2u);
  EXPECT_EQ(obs::SpanTracer::Global().dropped(), 3u);
  obs::SpanTracer::Global().Clear();
  EXPECT_EQ(obs::SpanTracer::Global().dropped(), 0u);
}

TEST(SpanTracerTest, RaiiSpansNestStrictlyAcrossThreads) {
  TracerGuard guard;
  common::ThreadPool pool(3);
  pool.Run(8, [](size_t task) {
    obs::Span outer("test", "outer" + std::to_string(task));
    for (int i = 0; i < 3; ++i) {
      obs::Span inner("test", "inner");
      obs::Span innermost("test", "innermost");
    }
  });
  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  EXPECT_EQ(events.size(), 8u * (1 + 3 * 2));
  const common::Status nesting = obs::ValidateSpanNesting(events);
  EXPECT_TRUE(nesting.ok()) << nesting;
}

TEST(SpanTracerTest, ThreadIdsAreDenseAndStable) {
  const int a = obs::CurrentThreadId();
  EXPECT_EQ(a, obs::CurrentThreadId());
  int b = -1;
  std::thread t([&b] { b = obs::CurrentThreadId(); });
  t.join();
  EXPECT_NE(a, b);
  EXPECT_GE(b, 0);
}

TEST(TraceExportTest, ChromeJsonRoundTrips) {
  std::vector<obs::SpanEvent> events;
  obs::SpanEvent a;
  a.name = "parse \"q\"\n";  // Exercises string escaping.
  a.cat = "frontend";
  a.ts_us = 1.5;
  a.dur_us = 1234.0625;
  a.tid = 3;
  a.args = {{"rows", "42"}, {"path", "a\\b"}};
  events.push_back(a);
  obs::SpanEvent b;
  b.name = "execute";
  b.cat = "exec";
  b.ts_us = 0.0078125;
  b.dur_us = 2.0;
  b.tid = 0;
  events.push_back(b);

  const std::string json = obs::ToChromeTraceJson(events);
  auto parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*parsed)[i].name, events[i].name);
    EXPECT_EQ((*parsed)[i].cat, events[i].cat);
    EXPECT_EQ((*parsed)[i].ts_us, events[i].ts_us);
    EXPECT_EQ((*parsed)[i].dur_us, events[i].dur_us);
    EXPECT_EQ((*parsed)[i].tid, events[i].tid);
    EXPECT_EQ((*parsed)[i].args, events[i].args);
  }
}

TEST(TraceExportTest, ParseRejectsMalformedJson) {
  EXPECT_FALSE(obs::ParseChromeTrace("{").ok());
  EXPECT_FALSE(obs::ParseChromeTrace("[]").ok());
  EXPECT_FALSE(obs::ParseChromeTrace("{\"traceEvents\": 7}").ok());
  EXPECT_FALSE(
      obs::ParseChromeTrace("{\"traceEvents\": [{\"ph\": \"X\"}]}").ok());
}

TEST(TraceExportTest, ValidateSpanNestingCatchesOverlap) {
  std::vector<obs::SpanEvent> good;
  obs::SpanEvent outer{"outer", "t", 0.0, 100.0, 1, {}};
  obs::SpanEvent inner{"inner", "t", 10.0, 50.0, 1, {}};
  good.push_back(outer);
  good.push_back(inner);
  EXPECT_TRUE(obs::ValidateSpanNesting(good).ok());

  std::vector<obs::SpanEvent> bad = good;
  bad[1].dur_us = 150.0;  // Starts inside outer, ends past it.
  EXPECT_FALSE(obs::ValidateSpanNesting(bad).ok());

  // The same intervals on different threads are independent.
  bad[1].tid = 2;
  EXPECT_TRUE(obs::ValidateSpanNesting(bad).ok());
}

// ---- Profiler / feedback-store units -------------------------------------

TEST(ProfilerTest, DistinctValueSelectivityPerSection51) {
  obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
  profiler.Reset();
  // Value "a" passes and repeats: it must count once, matching the
  // distinct-binding semantics the predicate cache bills by.
  profiler.Record("f", 0.001, "a", true);
  profiler.Record("f", 0.001, "a", true);
  profiler.Record("f", 0.001, "b", false);
  profiler.Record("f", 0.001, "c", false);
  profiler.Record("f", 0.001, "d", false);
  const auto p = profiler.Get("f");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->invocations, 5u);
  EXPECT_EQ(p->distinct_inputs, 4u);
  EXPECT_EQ(p->distinct_passes, 1u);
  EXPECT_DOUBLE_EQ(p->ObservedSelectivity(0.9), 0.25);
  EXPECT_NEAR(p->mean_seconds(), 0.001, 1e-12);
  EXPECT_NEAR(p->ObservedCostIos(1e-4), 10.0, 1e-9);
  profiler.Reset();
  EXPECT_FALSE(profiler.Get("f").has_value());
}

TEST(ProfilerTest, NonBooleanFunctionsHaveNoSelectivity) {
  obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
  profiler.Reset();
  profiler.Record("g", 0.002, "", std::nullopt);
  const auto p = profiler.Get("g");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->has_selectivity);
  EXPECT_DOUBLE_EQ(p->ObservedSelectivity(0.7), 0.7);
  profiler.Reset();
}

TEST(ProfilerTest, RankDriftThresholdIsRelative) {
  EXPECT_FALSE(obs::RankDriftExceeds(-0.5, -0.5, 0.5));
  EXPECT_FALSE(obs::RankDriftExceeds(-0.5, -0.4, 0.5));
  EXPECT_TRUE(obs::RankDriftExceeds(-0.005, -0.5, 0.5));
  EXPECT_TRUE(obs::RankDriftExceeds(-0.5, -0.005, 0.5));
  EXPECT_FALSE(obs::RankDriftExceeds(0.0, 0.0, 0.5));
}

TEST(FeedbackStoreTest, AbsorbProfilesConvertsWallToIoUnits) {
  obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
  obs::PredicateFeedbackStore& store = obs::PredicateFeedbackStore::Global();
  profiler.Reset();
  store.Clear();
  profiler.set_seconds_per_io(1e-4);
  profiler.Record("f", 0.001, "a", true);   // 10 I/Os per call.
  profiler.Record("f", 0.001, "b", false);
  EXPECT_EQ(store.AbsorbProfiles(profiler), 1u);
  const auto fb = store.Lookup("f");
  ASSERT_TRUE(fb.has_value());
  EXPECT_NEAR(fb->cost_per_call, 10.0, 1e-9);
  EXPECT_TRUE(fb->has_selectivity);
  EXPECT_DOUBLE_EQ(fb->selectivity, 0.5);
  EXPECT_EQ(fb->samples, 2u);
  store.Clear();
  EXPECT_FALSE(store.Lookup("f").has_value());
  profiler.Reset();
}

// ---- Full-lifecycle traces over the benchmark database -------------------

class TracedQueryTest : public ::testing::Test {
 protected:
  TracedQueryTest() {
    config_.scale = 120;
    config_.table_numbers = {1, 3, 6, 7, 9, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(TracedQueryTest, BenchmarkSuiteEmitsValidChromeTrace) {
  TracerGuard guard;
  cost::CostParams cost_params;
  cost_params.parallel_workers = 2;
  const exec::ExecParams exec_params = workload::ExecParamsFor(cost_params);
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    ASSERT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(&db_, *spec,
                                        optimizer::Algorithm::kMigration,
                                        cost_params, exec_params);
    ASSERT_TRUE(m.ok()) << m.status();
  }

  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  EXPECT_TRUE(HasSpan(events, "query", "query"));
  EXPECT_TRUE(HasSpan(events, "optimize", "optimize"));
  EXPECT_TRUE(HasSpan(events, "optimize", "dp.level"));
  EXPECT_TRUE(HasSpan(events, "exec", "execute"));
  EXPECT_TRUE(HasSpan(events, "exec", "open:"));
  EXPECT_TRUE(HasSpan(events, "exec", "batch:"));

  const common::Status nesting = obs::ValidateSpanNesting(events);
  EXPECT_TRUE(nesting.ok()) << nesting;

  const std::string json = obs::ToChromeTraceJson(events);
  auto parsed = obs::ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), events.size());
}

TEST_F(TracedQueryTest, FrontendSpansCoverParseBindRewrite) {
  TracerGuard guard;
  auto spec = subquery::ParseBindRewrite(
      "SELECT * FROM t3 WHERE t3.a > 0", &db_.catalog());
  ASSERT_TRUE(spec.ok()) << spec.status();
  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  EXPECT_TRUE(HasSpan(events, "frontend", "parse"));
  EXPECT_TRUE(HasSpan(events, "frontend", "bind"));
  EXPECT_TRUE(HasSpan(events, "frontend", "rewrite"));
  EXPECT_TRUE(obs::ValidateSpanNesting(events).ok());
}

TEST_F(TracedQueryTest, ParallelWorkerSpansLandOnPoolThreads) {
  // Expensive, cache-hostile predicate so the filter fans batches across
  // the pool; a pre-created pool lets the test learn the worker tids.
  catalog::FunctionDef def;
  def.name = "spanslow";
  def.cost_per_call = 50.0;
  def.selectivity = 0.5;
  def.cacheable = false;
  def.impl = [](const std::vector<types::Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    return types::Value(args[0].AsInt64() % 2 == 0);
  };
  ASSERT_TRUE(db_.catalog().functions().Register(def).ok());

  cost::CostParams cost_params;
  cost_params.parallel_workers = 3;
  exec::ExecContext ctx;
  ctx.catalog = &db_.catalog();
  ctx.params = workload::ExecParamsFor(cost_params);
  ctx.thread_pool = std::make_shared<common::ThreadPool>(
      ctx.params.parallel_workers - 1);

  // The tid universe: the pool's threads plus this (coordinator) thread.
  // Tasks sleep long enough that no thread can drain the queue alone, so
  // every pool thread claims at least one and registers its tid.
  std::set<int> known_tids{obs::CurrentThreadId()};
  std::mutex mu;
  ctx.thread_pool->Run(16, [&](size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      known_tids.insert(obs::CurrentThreadId());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  ASSERT_EQ(known_tids.size(), ctx.params.parallel_workers);

  auto spec = parser::ParseAndBind("SELECT * FROM t3 WHERE spanslow(t3.ua)",
                                   db_.catalog());
  ASSERT_TRUE(spec.ok()) << spec.status();
  optimizer::Optimizer opt(&db_.catalog(), cost_params);
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const plan::TableRef& ref : spec->tables) {
    auto table = db_.catalog().GetTable(ref.table_name);
    ASSERT_TRUE(table.ok());
    ctx.binding[ref.alias] = *table;
  }

  TracerGuard guard;
  auto rows = exec::ExecutePlan(*result->plan, &ctx, nullptr, nullptr);
  ASSERT_TRUE(rows.ok()) << rows.status();

  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  std::set<int> worker_tids;
  for (const obs::SpanEvent& e : events) {
    if (e.cat != "exec.parallel") continue;
    EXPECT_EQ(e.name, "worker");
    EXPECT_TRUE(known_tids.count(e.tid) > 0)
        << "worker span on unknown tid " << e.tid;
    worker_tids.insert(e.tid);
  }
  EXPECT_GE(worker_tids.size(), 2u)
      << "expected worker spans on more than one thread";
  EXPECT_TRUE(obs::ValidateSpanNesting(events).ok());
}

}  // namespace
}  // namespace ppp
