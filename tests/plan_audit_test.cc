// Unit tests for the plan-lifecycle observability stores: q-error
// arithmetic (hand-computed pairs and the zero-row clamp), the
// OperatorAuditRecord ring (wraparound, tail, concurrent writers — run
// under TSan), and PlanHistory aggregation with plan-change and regression
// detection (warmup gating, once-per-displacement flagging, eviction).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/plan_audit.h"
#include "obs/plan_history.h"

namespace ppp {
namespace {

using obs::CardinalityQError;
using obs::OperatorAuditRecord;
using obs::PlanAudit;
using obs::PlanHistory;
using obs::PlanHistoryEntry;
using obs::PlanOutcome;

OperatorAuditRecord MakeRecord(uint64_t id) {
  OperatorAuditRecord r;
  r.query_id = id;
  r.path = "0";
  r.op = "SeqScan(t" + std::to_string(id) + ")";
  r.est_rows = static_cast<double>(id * 10);
  r.actual_rows = id;  // Mirrors query_id so torn records are detectable.
  return r;
}

TEST(CardinalityQErrorTest, HandComputedPairs) {
  // Over-estimate: est 100 vs actual 25 -> 100/25 = 4.
  EXPECT_DOUBLE_EQ(CardinalityQError(100.0, 25), 4.0);
  // Under-estimate is symmetric: est 25 vs actual 100 -> also 4.
  EXPECT_DOUBLE_EQ(CardinalityQError(25.0, 100), 4.0);
  // Perfect estimate -> 1.
  EXPECT_DOUBLE_EQ(CardinalityQError(42.0, 42), 1.0);
  // Fractional estimates round through the ratio, not the clamp.
  EXPECT_DOUBLE_EQ(CardinalityQError(2.5, 5), 2.0);
}

TEST(CardinalityQErrorTest, ZeroRowOperatorsClampToOneRow) {
  // An empty operator never divides by zero: actual clamps to 1 row.
  EXPECT_DOUBLE_EQ(CardinalityQError(100.0, 0), 100.0);
  // A zero (or sub-row) estimate clamps the same way.
  EXPECT_DOUBLE_EQ(CardinalityQError(0.0, 50), 50.0);
  EXPECT_DOUBLE_EQ(CardinalityQError(0.25, 50), 50.0);
  // Both zero: perfectly estimated emptiness.
  EXPECT_DOUBLE_EQ(CardinalityQError(0.0, 0), 1.0);
}

TEST(PlanAuditTest, AppendSnapshotOldestFirst) {
  PlanAudit audit;
  for (uint64_t i = 1; i <= 5; ++i) audit.Append(MakeRecord(i));
  const std::vector<OperatorAuditRecord> all = audit.Snapshot();
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].query_id, i + 1);
  }
  EXPECT_EQ(audit.total(), 5u);
  EXPECT_EQ(audit.evicted(), 0u);
}

TEST(PlanAuditTest, WraparoundKeepsNewestAndCountsEvictions) {
  PlanAudit audit;
  audit.set_capacity(4);
  for (uint64_t i = 1; i <= 10; ++i) audit.Append(MakeRecord(i));
  EXPECT_EQ(audit.size(), 4u);
  EXPECT_EQ(audit.total(), 10u);
  EXPECT_EQ(audit.evicted(), 6u);
  const std::vector<OperatorAuditRecord> all = audit.Snapshot();
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].query_id, i + 7);  // 7, 8, 9, 10.
  }
}

TEST(PlanAuditTest, TailReturnsTheNewestOldestFirst) {
  PlanAudit audit;
  for (uint64_t i = 1; i <= 8; ++i) audit.Append(MakeRecord(i));
  const std::vector<OperatorAuditRecord> tail = audit.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].query_id, 6u);
  EXPECT_EQ(tail[2].query_id, 8u);
  EXPECT_EQ(audit.Tail(100).size(), 8u);
}

TEST(PlanAuditTest, DisabledAppendsAreDropped) {
  PlanAudit audit;
  audit.set_enabled(false);
  audit.Append(MakeRecord(1));
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.total(), 0u);
  audit.set_enabled(true);
  audit.Append(MakeRecord(2));
  EXPECT_EQ(audit.size(), 1u);
}

TEST(PlanAuditTest, ClearDropsRecordsAndZeroesCounters) {
  PlanAudit audit;
  audit.set_capacity(2);
  for (uint64_t i = 1; i <= 5; ++i) audit.Append(MakeRecord(i));
  audit.Clear();
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.total(), 0u);
  EXPECT_EQ(audit.evicted(), 0u);
  EXPECT_EQ(audit.capacity(), 2u);
}

// TSan witness: concurrent appenders racing the ring's wraparound with
// concurrent snapshotters must neither tear records nor corrupt the ring.
// Records carry query_id == actual_rows, so any torn copy is detectable.
TEST(PlanAuditTest, ConcurrentWritersWrapWithoutTearingRecords) {
  PlanAudit audit;
  audit.set_capacity(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&audit, &go, w] {
      while (!go.load()) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        OperatorAuditRecord r = MakeRecord(
            static_cast<uint64_t>(w) * kPerWriter + i + 1);
        r.actual_rows = r.query_id;
        audit.Append(std::move(r));
      }
    });
  }
  threads.emplace_back([&audit, &go] {
    while (!go.load()) {
    }
    for (int i = 0; i < 50; ++i) {
      for (const OperatorAuditRecord& r : audit.Snapshot()) {
        ASSERT_EQ(r.query_id, r.actual_rows);  // No torn records.
      }
    }
  });
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(audit.total(), kWriters * kPerWriter);
  EXPECT_EQ(audit.size(), 64u);
  EXPECT_EQ(audit.evicted(), kWriters * kPerWriter - 64);
  for (const OperatorAuditRecord& r : audit.Snapshot()) {
    EXPECT_EQ(r.query_id, r.actual_rows);
  }
}

TEST(PlanHistoryTest, AggregatesPerTextHashAndFingerprint) {
  PlanHistory history;
  history.Record(/*text_hash=*/7, /*fingerprint=*/100, 0.010, 5, 2.0, 1);
  history.Record(7, 100, 0.030, 7, 4.0, 2);
  history.Record(9, 200, 0.001, 0, 1.0, 3);
  ASSERT_EQ(history.size(), 2u);
  const std::vector<PlanHistoryEntry> all = history.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  const PlanHistoryEntry& a = all[0];
  EXPECT_EQ(a.text_hash, 7u);
  EXPECT_EQ(a.plan_fingerprint, 100u);
  EXPECT_EQ(a.executions, 2u);
  EXPECT_DOUBLE_EQ(a.wall_mean, 0.020);
  EXPECT_DOUBLE_EQ(a.wall_p95, 0.030);  // Nearest-rank over {10ms, 30ms}.
  EXPECT_EQ(a.total_invocations, 12u);
  EXPECT_DOUBLE_EQ(a.max_qerror, 4.0);
  EXPECT_EQ(a.first_query_id, 1u);
  EXPECT_EQ(a.last_query_id, 2u);
  EXPECT_FALSE(a.plan_changed);
  EXPECT_FALSE(a.regressed);
  EXPECT_EQ(all[1].text_hash, 9u);
}

TEST(PlanHistoryTest, ZeroTextHashIsIgnored) {
  PlanHistory history;
  const PlanOutcome outcome = history.Record(0, 100, 0.010, 0, 1.0, 1);
  EXPECT_FALSE(outcome.plan_changed);
  EXPECT_EQ(history.size(), 0u);
}

TEST(PlanHistoryTest, DetectsPlanChangeOnFingerprintFlip) {
  PlanHistory history;
  EXPECT_FALSE(history.Record(7, 100, 0.010, 0, 1.0, 1).plan_changed);
  EXPECT_FALSE(history.Record(7, 100, 0.010, 0, 1.0, 2).plan_changed);
  // New fingerprint for the same text: a plan change, flagged exactly once.
  EXPECT_TRUE(history.Record(7, 200, 0.010, 0, 1.0, 3).plan_changed);
  EXPECT_FALSE(history.Record(7, 200, 0.010, 0, 1.0, 4).plan_changed);
  // Flipping back to a previously seen plan is a change too.
  EXPECT_TRUE(history.Record(7, 100, 0.010, 0, 1.0, 5).plan_changed);
  EXPECT_EQ(history.changed_total(), 2u);
  EXPECT_EQ(history.PlansFor(7), 2u);
  // Both fingerprints remain as distinct history entries.
  EXPECT_EQ(history.size(), 2u);
}

TEST(PlanHistoryTest, RegressionNeedsWarmupOnBothPlans) {
  PlanHistory history;
  history.set_warmup_executions(3);
  history.set_regression_factor(1.5);
  // Plan A establishes a 10 ms mean over three runs.
  for (uint64_t q = 1; q <= 3; ++q) history.Record(7, 100, 0.010, 0, 1.0, q);
  // Plan B is 10x slower but must not flag before its own warmup.
  EXPECT_FALSE(history.Record(7, 200, 0.100, 0, 1.0, 4).plan_regressed);
  EXPECT_FALSE(history.Record(7, 200, 0.100, 0, 1.0, 5).plan_regressed);
  const PlanOutcome third = history.Record(7, 200, 0.100, 0, 1.0, 6);
  EXPECT_TRUE(third.plan_regressed);
  EXPECT_DOUBLE_EQ(third.prior_wall_mean, 0.010);
  // Flagged once: later executions of the same regressed plan stay quiet.
  EXPECT_FALSE(history.Record(7, 200, 0.100, 0, 1.0, 7).plan_regressed);
  EXPECT_EQ(history.regressed_total(), 1u);
  const std::vector<PlanHistoryEntry> all = history.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_FALSE(all[0].regressed);
  EXPECT_TRUE(all[1].regressed);
  EXPECT_TRUE(all[1].plan_changed);
}

TEST(PlanHistoryTest, FasterNewPlanNeverRegresses) {
  PlanHistory history;
  history.set_warmup_executions(2);
  for (uint64_t q = 1; q <= 2; ++q) history.Record(7, 100, 0.100, 0, 1.0, q);
  // The changed-to plan is 10x faster: no regression, ever.
  for (uint64_t q = 3; q <= 8; ++q) {
    EXPECT_FALSE(history.Record(7, 200, 0.010, 0, 1.0, q).plan_regressed);
  }
  EXPECT_EQ(history.regressed_total(), 0u);
}

TEST(PlanHistoryTest, SlightlySlowerPlanStaysUnderTheFactor) {
  PlanHistory history;
  history.set_warmup_executions(2);
  history.set_regression_factor(1.5);
  for (uint64_t q = 1; q <= 2; ++q) history.Record(7, 100, 0.010, 0, 1.0, q);
  // 1.2x slower is within the factor: noisy, not regressed.
  for (uint64_t q = 3; q <= 6; ++q) {
    EXPECT_FALSE(history.Record(7, 200, 0.012, 0, 1.0, q).plan_regressed);
  }
  EXPECT_EQ(history.regressed_total(), 0u);
}

TEST(PlanHistoryTest, DisabledRecordsNothing) {
  PlanHistory history;
  history.set_enabled(false);
  EXPECT_FALSE(history.Record(7, 100, 0.010, 0, 1.0, 1).plan_changed);
  EXPECT_EQ(history.size(), 0u);
  history.set_enabled(true);
  history.Record(7, 100, 0.010, 0, 1.0, 2);
  EXPECT_EQ(history.size(), 1u);
}

TEST(PlanHistoryTest, EvictsOldestEntryBeyondTheCap) {
  PlanHistory history;
  history.set_max_entries(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    history.Record(/*text_hash=*/i, /*fingerprint=*/i * 10, 0.001, 0, 1.0,
                   /*query_id=*/i);
  }
  EXPECT_EQ(history.size(), 3u);
  const std::vector<PlanHistoryEntry> all = history.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  // The two oldest (query ids 1 and 2) were evicted.
  EXPECT_EQ(all[0].text_hash, 3u);
  EXPECT_EQ(all[2].text_hash, 5u);
}

TEST(PlanHistoryTest, ClearDropsEntriesAndTotals) {
  PlanHistory history;
  history.Record(7, 100, 0.010, 0, 1.0, 1);
  history.Record(7, 200, 0.010, 0, 1.0, 2);
  EXPECT_EQ(history.changed_total(), 1u);
  history.Clear();
  EXPECT_EQ(history.size(), 0u);
  EXPECT_EQ(history.changed_total(), 0u);
  EXPECT_EQ(history.regressed_total(), 0u);
  // After Clear the first record is a fresh baseline, not a change.
  EXPECT_FALSE(history.Record(7, 300, 0.010, 0, 1.0, 3).plan_changed);
}

// TSan witness: concurrent Record() calls (distinct and shared text
// hashes) racing Snapshot() readers over the shared map.
TEST(PlanHistoryTest, ConcurrentRecordersAndSnapshotters) {
  PlanHistory history;
  history.set_max_entries(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 400;
  std::atomic<bool> go{false};
  std::atomic<uint64_t> next_query{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&history, &go, &next_query, w] {
      while (!go.load()) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t query_id = next_query.fetch_add(1) + 1;
        // Half the traffic shares text hash 1 (flipping between two
        // fingerprints), the rest spreads across per-writer hashes.
        if (i % 2 == 0) {
          history.Record(1, 100 + (i / 2) % 2, 0.001, 1, 2.0, query_id);
        } else {
          history.Record(10 + static_cast<uint64_t>(w), 300, 0.001, 1, 2.0,
                         query_id);
        }
      }
    });
  }
  threads.emplace_back([&history, &go] {
    while (!go.load()) {
    }
    for (int i = 0; i < 50; ++i) {
      for (const PlanHistoryEntry& e : history.Snapshot()) {
        ASSERT_GE(e.executions, 1u);
        ASSERT_GE(e.last_query_id, e.first_query_id);
      }
    }
  });
  go.store(true);
  for (std::thread& t : threads) t.join();
  uint64_t executions = 0;
  for (const PlanHistoryEntry& e : history.Snapshot()) {
    executions += e.executions;
  }
  EXPECT_EQ(executions, kWriters * kPerWriter);
}

}  // namespace
}  // namespace ppp
