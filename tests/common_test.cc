#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace ppp::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing widget");
  EXPECT_EQ(s.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

Status UseMacros(int x, int* out) {
  PPP_RETURN_IF_ERROR(FailIfNegative(x));
  PPP_ASSIGN_OR_RETURN(*out, DoubleIfPositive(x));
  return Status::OK();
}

TEST(StatusMacrosTest, PropagateAndAssign) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseMacros(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(0, &out).code(), StatusCode::kOutOfRange);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(StartsWith("u100", "u"));
  EXPECT_FALSE(StartsWith("a100", "u"));
  EXPECT_FALSE(StartsWith("u", "u100"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.5), "1.50");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, BernoulliTracksProbability) {
  Random rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RandomTest, ZeroSeedWorks) {
  Random rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 95u);  // No short cycles.
}

}  // namespace
}  // namespace ppp::common
