#include <gtest/gtest.h>

#include "optimizer/migration.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::optimizer {
namespace {

using expr::Call;
using expr::Col;
using expr::Eq;
using types::Tuple;
using types::TypeId;
using types::Value;

/// Tables sized so that a three-way join has the Q4 shape: the first join
/// keeps every a-stream tuple (rank ~0 for the stream) while the second
/// join is selective over the stream (negative rank), so only a *group*
/// pullup is profitable.
class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : pool_(&disk_, 512), catalog_(&pool_) {
    // a: 600 rows, grp10 over 60 values. b: 1200 rows, grp10 over 120
    // values, uniq unique. c: 2000 rows, uniq unique, tenth over 200.
    MakeTable("a", 600);
    MakeTable("b", 1200);
    MakeTable("c", 2000);
    auto& fns = catalog_.functions();
    EXPECT_TRUE(fns.RegisterCostlyPredicate("costly", 100, 0.5).ok());
    binding_ = {{"a", *catalog_.GetTable("a")},
                {"b", *catalog_.GetTable("b")},
                {"c", *catalog_.GetTable("c")}};
    analyzer_ = std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
    cost_ = std::make_unique<cost::CostModel>(&catalog_, binding_,
                                              cost::CostParams{});
  }

  void MakeTable(const std::string& name, int64_t rows) {
    auto table = catalog_.CreateTable(name, {{"uniq", TypeId::kInt64},
                                             {"grp10", TypeId::kInt64},
                                             {"tenth", TypeId::kInt64},
                                             {"pad", TypeId::kString}});
    ASSERT_TRUE(table.ok());
    const std::string pad(60, 'p');
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE((*table)
                      ->Insert(Tuple({Value(i), Value(i % (rows / 10)),
                                      Value(i % 10), Value(pad)}))
                      .ok());
    }
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
  std::unique_ptr<cost::CostModel> cost_;
};

/// Builds the Q4-shaped tree: Filter(costly) glued on scan(a), then
/// J1 = a ⋈ b (keeps all of a-stream), J2 = · ⋈ c (selective).
plan::PlanPtr BuildQ4Tree(MigrationTest* t, expr::PredicateInfo costly,
                          expr::PredicateInfo j1, expr::PredicateInfo j2,
                          expr::PredicateInfo cheap_c) {
  plan::PlanPtr a = plan::MakeFilter(plan::MakeSeqScan("a", "a"),
                                     std::move(costly));
  plan::PlanPtr join1 = plan::MakeJoin(plan::JoinMethod::kHash, std::move(a),
                                       plan::MakeSeqScan("b", "b"),
                                       std::move(j1));
  plan::PlanPtr c = plan::MakeFilter(plan::MakeSeqScan("c", "c"),
                                     std::move(cheap_c));
  (void)t;
  return plan::MakeJoin(plan::JoinMethod::kHash, std::move(join1),
                        std::move(c), std::move(j2));
}

TEST_F(MigrationTest, MovesFilterAboveJoinGroup) {
  // J1 over the a-stream: sel = min(1, (1/120) * values(b.grp10)=120) = 1
  // (caching) -> rank 0-ish. J2 over the stream: selective -> rank << 0.
  // The costly filter (rank -0.005) must end up above BOTH joins, which
  // single-join reasoning would never do.
  plan::PlanPtr tree = BuildQ4Tree(
      this, Analyze(Call("costly", {Col("a", "uniq")})),
      Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))),
      Analyze(Eq(Col("b", "uniq"), Col("c", "uniq"))),
      Analyze(Eq(Col("c", "tenth"), expr::Int(0))));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  const double before = tree->est_cost;

  PredicateMigrator migrator(cost_.get());
  auto rounds = migrator.Migrate(&tree);
  ASSERT_TRUE(rounds.ok()) << rounds.status();
  EXPECT_GE(*rounds, 1);

  // The filter is now the root (above both joins).
  ASSERT_EQ(tree->kind, plan::PlanKind::kFilter);
  EXPECT_TRUE(tree->predicate.is_expensive());
  EXPECT_LT(tree->est_cost, before);
}

TEST_F(MigrationTest, FixpointIsStable) {
  plan::PlanPtr tree = BuildQ4Tree(
      this, Analyze(Call("costly", {Col("a", "uniq")})),
      Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))),
      Analyze(Eq(Col("b", "uniq"), Col("c", "uniq"))),
      Analyze(Eq(Col("c", "tenth"), expr::Int(0))));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  PredicateMigrator migrator(cost_.get());
  ASSERT_TRUE(migrator.Migrate(&tree).ok());
  const std::string once = tree->Signature();
  const double cost_once = tree->est_cost;
  // A second migration pass must be a no-op.
  auto rounds = migrator.Migrate(&tree);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0);
  EXPECT_EQ(tree->Signature(), once);
  EXPECT_DOUBLE_EQ(tree->est_cost, cost_once);
}

TEST_F(MigrationTest, MigrationNeverIncreasesCost) {
  // Several hand-built trees; migration must not make any of them pricier.
  struct Case {
    const char* name;
    plan::PlanPtr tree;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"filter_on_outer",
       BuildQ4Tree(this, Analyze(Call("costly", {Col("a", "uniq")})),
                   Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))),
                   Analyze(Eq(Col("b", "uniq"), Col("c", "uniq"))),
                   Analyze(Eq(Col("c", "tenth"), expr::Int(0))))});
  // Filter already on top: nothing to gain.
  {
    plan::PlanPtr join = plan::MakeJoin(
        plan::JoinMethod::kHash, plan::MakeSeqScan("a", "a"),
        plan::MakeSeqScan("b", "b"),
        Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))));
    cases.push_back(
        {"filter_on_top",
         plan::MakeFilter(std::move(join),
                          Analyze(Call("costly", {Col("a", "uniq")})))});
  }
  for (Case& c : cases) {
    ASSERT_TRUE(cost_->Annotate(c.tree.get()).ok());
    const double before = c.tree->est_cost;
    PredicateMigrator migrator(cost_.get());
    ASSERT_TRUE(migrator.Migrate(&c.tree).ok()) << c.name;
    EXPECT_LE(c.tree->est_cost, before * 1.0001) << c.name;
  }
}

TEST_F(MigrationTest, SecondaryJoinPredicateStaysAboveItsJoin) {
  // A secondary predicate referencing a and b can sink at most to just
  // above the a-b join, never below it.
  plan::PlanPtr join1 = plan::MakeJoin(
      plan::JoinMethod::kHash, plan::MakeSeqScan("a", "a"),
      plan::MakeSeqScan("b", "b"),
      Analyze(Eq(Col("a", "grp10"), Col("b", "grp10"))));
  plan::PlanPtr join2 = plan::MakeJoin(
      plan::JoinMethod::kHash, std::move(join1), plan::MakeSeqScan("c", "c"),
      Analyze(Eq(Col("b", "uniq"), Col("c", "uniq"))));
  // Expensive secondary over a,b placed (suboptimally) at the very top.
  plan::PlanPtr tree = plan::MakeFilter(
      std::move(join2),
      Analyze(Call("costly", {Col("a", "uniq"), Col("b", "uniq")})));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  PredicateMigrator migrator(cost_.get());
  ASSERT_TRUE(migrator.Migrate(&tree).ok());

  // Find the filter; every scan under it must include both a and b.
  const plan::PlanNode* node = tree.get();
  bool found = false;
  std::vector<const plan::PlanNode*> stack = {node};
  while (!stack.empty()) {
    const plan::PlanNode* cur = stack.back();
    stack.pop_back();
    if (cur->kind == plan::PlanKind::kFilter &&
        cur->predicate.is_expensive()) {
      found = true;
      const std::vector<std::string> aliases =
          cur->children[0]->CollectAliases();
      EXPECT_NE(std::find(aliases.begin(), aliases.end(), "a"),
                aliases.end());
      EXPECT_NE(std::find(aliases.begin(), aliases.end(), "b"),
                aliases.end());
    }
    for (const plan::PlanPtr& child : cur->children) {
      stack.push_back(child.get());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MigrationTest, CheapFiltersAreNotMoved) {
  // A cheap filter glued to its scan stays there.
  plan::PlanPtr a = plan::MakeFilter(plan::MakeSeqScan("a", "a"),
                                     Analyze(Eq(Col("a", "tenth"),
                                                expr::Int(0))));
  plan::PlanPtr tree = plan::MakeJoin(
      plan::JoinMethod::kHash, std::move(a), plan::MakeSeqScan("b", "b"),
      Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  PredicateMigrator migrator(cost_.get());
  ASSERT_TRUE(migrator.Migrate(&tree).ok());
  ASSERT_EQ(tree->kind, plan::PlanKind::kJoin);
  EXPECT_EQ(tree->children[0]->kind, plan::PlanKind::kFilter);
}

TEST_F(MigrationTest, PlanWithoutExpensiveFiltersUnchanged) {
  plan::PlanPtr tree = plan::MakeJoin(
      plan::JoinMethod::kHash, plan::MakeSeqScan("a", "a"),
      plan::MakeSeqScan("b", "b"),
      Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  const std::string before = tree->Signature();
  PredicateMigrator migrator(cost_.get());
  auto rounds = migrator.Migrate(&tree);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0);
  EXPECT_EQ(tree->Signature(), before);
}

TEST_F(MigrationTest, SingleScanPlanIsNoop) {
  plan::PlanPtr tree = plan::MakeFilter(
      plan::MakeSeqScan("a", "a"), Analyze(Call("costly", {Col("a", "uniq")})));
  ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
  PredicateMigrator migrator(cost_.get());
  auto rounds = migrator.Migrate(&tree);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0);
}

}  // namespace
}  // namespace ppp::optimizer
