#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::catalog {
namespace {

using types::TypeId;
using types::Tuple;
using types::Value;

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 64), catalog_(&pool_) {}

  Table* MakeEmp() {
    auto table = catalog_.CreateTable(
        "emp", {{"id", TypeId::kInt64},
                {"dept", TypeId::kInt64},
                {"name", TypeId::kString}});
    EXPECT_TRUE(table.ok());
    return *table;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGet) {
  Table* t = MakeEmp();
  auto got = catalog_.GetTable("emp");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, t);
  EXPECT_EQ(catalog_.TableNames(), std::vector<std::string>{"emp"});
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  MakeEmp();
  auto dup = catalog_.CreateTable("emp", {{"x", TypeId::kInt64}});
  EXPECT_EQ(dup.status().code(), common::StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetMissingTableFails) {
  EXPECT_EQ(catalog_.GetTable("nope").status().code(),
            common::StatusCode::kNotFound);
}

TEST_F(CatalogTest, EmptyOrDuplicateColumnsRejected) {
  EXPECT_FALSE(catalog_.CreateTable("bad", {}).ok());
  EXPECT_FALSE(catalog_
                   .CreateTable("bad2", {{"a", TypeId::kInt64},
                                         {"a", TypeId::kInt64}})
                   .ok());
  EXPECT_FALSE(catalog_.CreateTable("", {{"a", TypeId::kInt64}}).ok());
}

TEST_F(CatalogTest, InsertAndReadBack) {
  Table* t = MakeEmp();
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{1}), Value(int64_t{10}), Value("ann")}))
          .ok());
  EXPECT_EQ(t->NumTuples(), 1);

  storage::HeapFile::Iterator it = t->heap().Scan();
  storage::RecordId rid;
  std::string bytes;
  ASSERT_TRUE(it.Next(&rid, &bytes));
  auto tuple = t->Read(rid);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->Get(2).AsString(), "ann");
}

TEST_F(CatalogTest, ArityMismatchRejected) {
  Table* t = MakeEmp();
  EXPECT_FALSE(t->Insert(Tuple({Value(int64_t{1})})).ok());
}

TEST_F(CatalogTest, IndexBuildAndLookupThroughInserts) {
  Table* t = MakeEmp();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(Tuple({Value(i), Value(i % 10), Value("x")})).ok());
  }
  ASSERT_TRUE(t->CreateIndex("dept").ok());
  // Index built over existing data.
  EXPECT_EQ(t->GetIndex("dept")->Lookup(3).size(), 10u);
  // ...and maintained by later inserts.
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{100}), Value(int64_t{3}), Value("y")}))
          .ok());
  EXPECT_EQ(t->GetIndex("dept")->Lookup(3).size(), 11u);
}

TEST_F(CatalogTest, IndexOnMissingOrNonIntColumnFails) {
  Table* t = MakeEmp();
  EXPECT_EQ(t->CreateIndex("nope").code(),
            common::StatusCode::kNotFound);
  EXPECT_EQ(t->CreateIndex("name").code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, DuplicateIndexRejected) {
  Table* t = MakeEmp();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  EXPECT_EQ(t->CreateIndex("id").code(),
            common::StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, AnalyzeComputesStats) {
  Table* t = MakeEmp();
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        t->Insert(Tuple({Value(i), Value(i % 20), Value("n")})).ok());
  }
  ASSERT_TRUE(t->Analyze().ok());
  EXPECT_EQ(t->GetColumnStats("id").num_distinct, 60);
  EXPECT_EQ(t->GetColumnStats("id").min_value, 0);
  EXPECT_EQ(t->GetColumnStats("id").max_value, 59);
  EXPECT_EQ(t->GetColumnStats("dept").num_distinct, 20);
  EXPECT_EQ(t->GetColumnStats("name").num_distinct, 1);
}

TEST_F(CatalogTest, AnalyzeHandlesNullsAndLateMinima) {
  Table* t = MakeEmp();
  ASSERT_TRUE(t->Insert(Tuple({Value(), Value(int64_t{5}), Value("a")})).ok());
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{-7}), Value(int64_t{2}), Value("b")}))
          .ok());
  ASSERT_TRUE(t->Analyze().ok());
  // NULL in the first row must not pollute min/max.
  EXPECT_EQ(t->GetColumnStats("id").num_distinct, 1);
  EXPECT_EQ(t->GetColumnStats("id").min_value, -7);
  EXPECT_EQ(t->GetColumnStats("id").max_value, -7);
}

TEST_F(CatalogTest, NullsSkippedByIndexes) {
  Table* t = MakeEmp();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  ASSERT_TRUE(t->Insert(Tuple({Value(), Value(int64_t{1}), Value("a")})).ok());
  EXPECT_EQ(t->GetIndex("id")->NumEntries(), 0u);
}

TEST_F(CatalogTest, RowSchemaForAlias) {
  Table* t = MakeEmp();
  const types::RowSchema schema = t->RowSchemaForAlias("e");
  ASSERT_EQ(schema.NumColumns(), 3u);
  EXPECT_EQ(schema.Column(0).QualifiedName(), "e.id");
  EXPECT_EQ(schema.Column(2).type, TypeId::kString);
}

TEST(FunctionRegistryTest, RegisterAndLookup) {
  FunctionRegistry registry;
  FunctionDef def;
  def.name = "f";
  def.cost_per_call = 5;
  def.impl = [](const std::vector<Value>&) { return Value(true); };
  ASSERT_TRUE(registry.Register(std::move(def)).ok());
  auto got = registry.Lookup("f");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ((*got)->cost_per_call, 5);
  EXPECT_TRUE(registry.Contains("f"));
  EXPECT_FALSE(registry.Contains("g"));
  EXPECT_EQ(registry.Lookup("g").status().code(),
            common::StatusCode::kNotFound);
}

TEST(FunctionRegistryTest, DuplicateAndEmptyNamesRejected) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterCostlyPredicate("f", 1, 0.5).ok());
  EXPECT_EQ(registry.RegisterCostlyPredicate("f", 2, 0.5).code(),
            common::StatusCode::kAlreadyExists);
  FunctionDef unnamed;
  EXPECT_EQ(registry.Register(std::move(unnamed)).code(),
            common::StatusCode::kInvalidArgument);
}

TEST(FunctionRegistryTest, CostlyPredicateSelectivityIsAccurate) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterCostlyPredicate("sel30", 1, 0.3).ok());
  const FunctionDef* def = *registry.Lookup("sel30");
  int pass = 0;
  for (int64_t i = 0; i < 10000; ++i) {
    if (def->impl({Value(i)}).AsBool()) ++pass;
  }
  EXPECT_NEAR(pass / 10000.0, 0.3, 0.03);
}

TEST(FunctionRegistryTest, CostlyPredicateIsDeterministic) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterCostlyPredicate("d", 1, 0.5).ok());
  const FunctionDef* def = *registry.Lookup("d");
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(def->impl({Value(i)}).AsBool(), def->impl({Value(i)}).AsBool());
  }
}

TEST(FunctionRegistryTest, NamesSorted) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterCostlyPredicate("zeta", 1, 0.5).ok());
  ASSERT_TRUE(registry.RegisterCostlyPredicate("alpha", 1, 0.5).ok());
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace ppp::catalog
