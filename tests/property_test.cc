// Property tests for the paper's core optimality claims:
//  * rank-ordering of selections is optimal on a single table (§4.1,
//    checked against brute-force permutation costs);
//  * Predicate Migration finds the cost-minimal slot for a selection in a
//    join chain (checked against exhaustive slot placement over a sweep of
//    function costs and selectivities);
//  * Value comparison is a total order (the B-tree and sort operators
//    depend on it);
//  * parsed expressions round-trip through ToString.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "optimizer/migration.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp {
namespace {

using expr::Call;
using expr::Col;
using expr::Eq;
using types::Tuple;
using types::TypeId;
using types::Value;

// ---------- Rank ordering vs brute force -----------------------------------

class RankOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(RankOrderTest, RankOrderMinimizesSequentialCost) {
  common::Random rng(static_cast<uint64_t>(GetParam()) * 131 + 5);
  const int k = 2 + static_cast<int>(rng.NextUint64(3));  // 2..4 selections.

  struct Sel {
    double cost;
    double selectivity;
  };
  std::vector<Sel> sels;
  for (int i = 0; i < k; ++i) {
    sels.push_back({std::pow(10.0, rng.NextDouble() * 3 - 1),  // 0.1..100.
                    0.05 + rng.NextDouble() * 0.9});
  }

  // Sequential evaluation cost of an order over N input rows (no caching):
  // sum_i cost_i * N * prod_{j<i} sel_j.
  auto order_cost = [&](const std::vector<int>& order) {
    double rows = 1000.0;
    double total = 0;
    for (const int i : order) {
      total += sels[static_cast<size_t>(i)].cost * rows;
      rows *= sels[static_cast<size_t>(i)].selectivity;
    }
    return total;
  };

  // Brute-force optimum over all k! orders.
  std::vector<int> perm(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) perm[static_cast<size_t>(i)] = i;
  double best = order_cost(perm);
  std::vector<int> ids = perm;
  while (std::next_permutation(ids.begin(), ids.end())) {
    best = std::min(best, order_cost(ids));
  }

  // Rank order: ascending (selectivity - 1) / cost.
  std::vector<int> by_rank = perm;
  std::sort(by_rank.begin(), by_rank.end(), [&](int a, int b) {
    const Sel& x = sels[static_cast<size_t>(a)];
    const Sel& y = sels[static_cast<size_t>(b)];
    return (x.selectivity - 1) / x.cost < (y.selectivity - 1) / y.cost;
  });
  EXPECT_NEAR(order_cost(by_rank), best, best * 1e-9)
      << "rank order is not optimal for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankOrderTest, ::testing::Range(0, 20));

TEST(RankOrderTest, OptimizerAppliesRankOrderOnSingleTable) {
  storage::DiskManager disk;
  storage::BufferPool pool(&disk, 64);
  catalog::Catalog catalog(&pool);
  auto table = catalog.CreateTable("t", {{"x", TypeId::kInt64}});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)->Insert(Tuple({Value(i)})).ok());
  }
  ASSERT_TRUE((*table)->Analyze().ok());
  // Ranks: f1 = (0.9-1)/1 = -0.1, f2 = (0.2-1)/40 = -0.02,
  //        f3 = (0.3-1)/2 = -0.35. Ascending: f3, f1, f2.
  ASSERT_TRUE(catalog.functions().RegisterCostlyPredicate("f1", 1, 0.9).ok());
  ASSERT_TRUE(catalog.functions().RegisterCostlyPredicate("f2", 40, 0.2).ok());
  ASSERT_TRUE(catalog.functions().RegisterCostlyPredicate("f3", 2, 0.3).ok());

  auto spec = parser::ParseAndBind(
      "SELECT * FROM t WHERE f1(t.x) AND f2(t.x) AND f3(t.x)", catalog);
  ASSERT_TRUE(spec.ok());
  optimizer::Optimizer opt(&catalog, {});
  auto result = opt.Optimize(*spec, optimizer::Algorithm::kPushDown);
  ASSERT_TRUE(result.ok());

  // Read the filter chain top-down: must be f2, f1, f3.
  std::vector<std::string> chain;
  const plan::PlanNode* node = result->plan.get();
  while (node->kind == plan::PlanKind::kFilter) {
    chain.push_back(node->predicate.expr->function_name);
    node = node->children[0].get();
  }
  EXPECT_EQ(chain, (std::vector<std::string>{"f2", "f1", "f3"}));
}

// ---------- Migration vs exhaustive slot placement --------------------------

/// Fixture: a fixed two-join chain a ⋈ b ⋈ (σ c); the parameterized
/// expensive selection on `a` may sit at slot 0 (scan), 1 (above J1) or
/// 2 (above J2). Predicate Migration must land on the cheapest slot.
class MigrationSlotTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  MigrationSlotTest() : pool_(&disk_, 512), catalog_(&pool_) {
    MakeTable("a", 500);
    MakeTable("b", 1000);
    MakeTable("c", 2000);
    binding_ = {{"a", *catalog_.GetTable("a")},
                {"b", *catalog_.GetTable("b")},
                {"c", *catalog_.GetTable("c")}};
    analyzer_ =
        std::make_unique<expr::PredicateAnalyzer>(&catalog_, binding_);
    cost_ = std::make_unique<cost::CostModel>(&catalog_, binding_,
                                              cost::CostParams{});
  }

  void MakeTable(const std::string& name, int64_t rows) {
    auto table = catalog_.CreateTable(name, {{"uniq", TypeId::kInt64},
                                             {"tenth", TypeId::kInt64}});
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          (*table)->Insert(Tuple({Value(i), Value(i % 10)})).ok());
    }
    ASSERT_TRUE((*table)->Analyze().ok());
  }

  expr::PredicateInfo Analyze(const expr::ExprPtr& e) {
    auto info = analyzer_->Analyze(e);
    EXPECT_TRUE(info.ok()) << info.status();
    return *info;
  }

  /// Builds the chain with the expensive filter at `slot` (0..2).
  plan::PlanPtr BuildAtSlot(int slot, const expr::PredicateInfo& filt) {
    plan::PlanPtr node = plan::MakeSeqScan("a", "a");
    if (slot == 0) node = plan::MakeFilter(std::move(node), filt);
    node = plan::MakeJoin(plan::JoinMethod::kHash, std::move(node),
                          plan::MakeSeqScan("b", "b"),
                          Analyze(Eq(Col("a", "uniq"), Col("b", "uniq"))));
    if (slot == 1) node = plan::MakeFilter(std::move(node), filt);
    plan::PlanPtr c = plan::MakeFilter(
        plan::MakeSeqScan("c", "c"),
        Analyze(Eq(Col("c", "tenth"), expr::Int(0))));
    node = plan::MakeJoin(plan::JoinMethod::kHash, std::move(node),
                          std::move(c),
                          Analyze(Eq(Col("b", "uniq"), Col("c", "uniq"))));
    if (slot == 2) node = plan::MakeFilter(std::move(node), filt);
    return node;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
  expr::TableBinding binding_;
  std::unique_ptr<expr::PredicateAnalyzer> analyzer_;
  std::unique_ptr<cost::CostModel> cost_;
};

TEST_P(MigrationSlotTest, MigrationFindsCheapestSlot) {
  const double fn_cost = std::get<0>(GetParam());
  const double fn_sel = std::get<1>(GetParam());
  const std::string fn = common::StringPrintf("f_%g_%g", fn_cost, fn_sel);
  ASSERT_TRUE(
      catalog_.functions().RegisterCostlyPredicate(fn, fn_cost, fn_sel)
          .ok());
  const expr::PredicateInfo filt = Analyze(Call(fn, {Col("a", "uniq")}));

  double best = 0;
  for (int slot = 0; slot < 3; ++slot) {
    plan::PlanPtr tree = BuildAtSlot(slot, filt);
    ASSERT_TRUE(cost_->Annotate(tree.get()).ok());
    if (slot == 0 || tree->est_cost < best) best = tree->est_cost;
  }

  plan::PlanPtr start = BuildAtSlot(0, filt);
  ASSERT_TRUE(cost_->Annotate(start.get()).ok());
  optimizer::PredicateMigrator migrator(cost_.get());
  ASSERT_TRUE(migrator.Migrate(&start).ok());
  EXPECT_LE(start->est_cost, best * 1.0001)
      << "cost=" << fn_cost << " sel=" << fn_sel;
}

INSTANTIATE_TEST_SUITE_P(
    CostSelSweep, MigrationSlotTest,
    ::testing::Combine(::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0),
                       ::testing::Values(0.1, 0.5, 0.9)));

// ---------- Value total order -----------------------------------------------

TEST(ValueOrderTest, ComparisonIsTotalOrderOnRandomTriples) {
  common::Random rng(99);
  auto random_value = [&]() -> Value {
    switch (rng.NextUint64(4)) {
      case 0:
        return Value(rng.NextInt64(-50, 50));
      case 1:
        return Value(rng.NextDouble() * 100 - 50);
      case 2:
        return Value(std::string(1 + rng.NextUint64(3), 'a' +
                                 static_cast<char>(rng.NextUint64(4))));
      default:
        return Value();
    }
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const Value a = random_value();
    const Value b = random_value();
    const Value c = random_value();
    // Antisymmetry.
    EXPECT_EQ(a.Compare(b), -b.Compare(a));
    // Transitivity (sampled).
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0) << a.ToString() << " " << b.ToString()
                                 << " " << c.ToString();
    }
    // Reflexivity.
    EXPECT_EQ(a.Compare(a), 0);
    // Hash consistency.
    if (a.Compare(b) == 0) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

// ---------- Parser round trip ------------------------------------------------

TEST(ParserRoundTripTest, ToStringReparsesToEqualTree) {
  const char* queries[] = {
      "SELECT * FROM t WHERE t.a = 1 AND costly(t.b)",
      "SELECT * FROM r, s WHERE r.x = s.y OR NOT (r.z < 3)",
      "SELECT * FROM t WHERE f(t.a + 2 * t.b, 'lit') AND t.c >= 1.5",
      "SELECT * FROM t WHERE (t.a = 1 OR t.b = 2) AND t.c <> 3",
  };
  for (const char* sql : queries) {
    auto first = parser::ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql;
    ASSERT_NE(first->where, nullptr);
    const std::string printed =
        "SELECT * FROM t WHERE " + first->where->ToString();
    auto second = parser::ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_TRUE(first->where->Equals(*second->where)) << printed;
  }
}

}  // namespace
}  // namespace ppp
