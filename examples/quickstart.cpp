// Quickstart: build a tiny database, register an expensive predicate, and
// watch the placement algorithms disagree about where it belongs.
//
// This exercises the full public API surface: Database, schema generation,
// SQL parsing/binding, the six placement algorithms, plan printing, and
// the optimize-then-execute measurement harness.

#include <cstdio>

#include "optimizer/algorithm.h"
#include "parser/binder.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

int main() {
  using namespace ppp;

  // A small instance of the paper's benchmark database: tables t3 and t10
  // with the standard column conventions, 100-byte tuples, B-trees on the
  // a* columns.
  workload::Database db;
  workload::BenchmarkConfig config;
  config.scale = 500;  // t3: 1500 tuples, t10: 5000 tuples.
  config.table_numbers = {3, 10};

  common::Status status = workload::LoadBenchmarkDatabase(&db, config);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  status = workload::RegisterBenchmarkFunctions(&db);
  if (!status.ok()) {
    std::fprintf(stderr, "functions failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Query 1 of the paper: an expensive selection (100 random I/Os per
  // call) on the big table, under a join that would filter that table.
  const std::string sql =
      "SELECT * FROM t3, t10 "
      "WHERE t3.ua = t10.ua1 AND costly100(t10.ua)";
  std::printf("query: %s\n\n", sql.c_str());

  auto spec = parser::ParseAndBind(sql, db.catalog());
  if (!spec.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  const optimizer::Algorithm algorithms[] = {
      optimizer::Algorithm::kPushDown,  optimizer::Algorithm::kPullUp,
      optimizer::Algorithm::kPullRank,  optimizer::Algorithm::kMigration,
      optimizer::Algorithm::kLdl,       optimizer::Algorithm::kExhaustive,
  };

  cost::CostParams cost_params;
  exec::ExecParams exec_params;

  for (const optimizer::Algorithm algorithm : algorithms) {
    auto m = workload::RunWithAlgorithm(&db, *spec, algorithm, cost_params,
                                        exec_params);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   optimizer::AlgorithmName(algorithm),
                   m.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", m->Summary().c_str());
    std::printf("%s\n", m->plan_text.c_str());
  }
  return 0;
}
