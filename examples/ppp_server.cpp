// Standalone network server over the benchmark database: loads the tK
// tables at PPP_SCALE, registers the paper's UDFs, and serves the wire
// protocol (see src/net/wire.h) until SIGINT/SIGTERM or a SHUTDOWN frame
// triggers the graceful drain. Knobs: PPP_PORT (0 = ephemeral, printed on
// stdout), PPP_MAX_INFLIGHT, PPP_QUEUE_DEPTH, PPP_QUEUE_TIMEOUT, PPP_SCALE.
//
//   PPP_PORT=7878 ./ppp_server &
//   ./ppp_client 7878 "QUERY SELECT count(*) FROM t3;"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "net/server.h"
#include "serve/session.h"
#include "workload/database.h"
#include "workload/schema_gen.h"

namespace {

// Written by the signal handler, polled by the main loop: signal context
// may only touch lock-free state, so the drain itself runs on the main
// thread, not in the handler.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main() {
  using namespace ppp;

  int64_t scale = 200;
  if (const char* env = std::getenv("PPP_SCALE");
      env != nullptr && *env != '\0') {
    scale = std::atoll(env);
  }
  workload::Database db;
  workload::BenchmarkConfig config;
  config.scale = scale;
  config.table_numbers = {1, 3, 6, 7, 9, 10};
  if (!workload::LoadBenchmarkDatabase(&db, config).ok() ||
      !workload::RegisterBenchmarkFunctions(&db).ok()) {
    std::fprintf(stderr, "failed to load benchmark database\n");
    return 1;
  }

  serve::SessionManager manager(&db);
  net::Server server(&db, &manager, net::Server::OptionsFromEnv());
  const common::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.message().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("ppp_server listening on 127.0.0.1:%d (scale %lld)\n",
              server.port(), static_cast<long long>(scale));
  std::fflush(stdout);

  // A SHUTDOWN frame drains the server without raising a signal, so poll
  // both the flag and the admission queue's shutdown state.
  while (g_stop == 0 && !server.admission().shutdown()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("ppp_server draining: finishing in-flight statements\n");
  std::fflush(stdout);
  server.Stop();
  std::printf(
      "ppp_server stopped: %llu connections, %llu queued, %llu shed, "
      "%llu timeouts\n",
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(server.admission().total_queued()),
      static_cast<unsigned long long>(server.admission().total_shed()),
      static_cast<unsigned long long>(server.admission().total_timeouts()));
  return 0;
}
