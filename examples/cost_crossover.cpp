// Where does pullup start to pay? §4.2 notes PullUp suits systems whose
// predicates are "either negligibly cheap ... or extremely expensive", and
// that it is "difficult to quantify exactly where to draw the lines". This
// example draws the line empirically: it sweeps the per-call cost of a
// selection from 0.01 to 1000 random I/Os and reports, at each point,
// where Predicate Migration places the predicate and what PushDown/PullUp
// would have paid.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

using namespace ppp;

namespace {

/// Depth of the expensive filter from the root: 0 = fully pulled up.
int FilterDepth(const plan::PlanNode& node, int depth = 0) {
  if (node.kind == plan::PlanKind::kFilter &&
      node.predicate.is_expensive()) {
    return depth;
  }
  for (const auto& child : node.children) {
    const int d = FilterDepth(*child, depth + 1);
    if (d >= 0) return d;
  }
  return -1;
}

}  // namespace

int main() {
  workload::Database db;
  workload::BenchmarkConfig config;
  config.scale = 400;
  config.table_numbers = {3, 10};
  common::Status st = workload::LoadBenchmarkDatabase(&db, config);
  PPP_CHECK(st.ok()) << st.ToString();

  std::printf("sweep: SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND "
              "f(t10.ua), cost(f) from 0.01 to 1000 I/Os, sel 0.5\n\n");
  std::printf("%10s %12s %12s %12s %18s\n", "cost(f)", "PushDown",
              "PullUp", "Migration", "migrated placement");

  // A small modeled working memory makes the join spill, giving it a real
  // per-tuple cost — below some predicate cost, filtering first is the
  // better deal and the optimizer's crossover becomes visible.
  cost::CostParams params;
  params.buffer_pages = 16;

  const double costs[] = {0.001, 0.01, 0.05, 0.1, 0.5, 1,
                          2,     5,    10,   50,  100, 1000};
  int variant = 0;
  for (const double cost : costs) {
    const std::string fn = "f" + std::to_string(variant++);
    st = db.catalog().functions().RegisterCostlyPredicate(fn, cost, 0.5);
    PPP_CHECK(st.ok());
    const std::string sql =
        "SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND " + fn +
        "(t10.ua)";
    auto spec = parser::ParseAndBind(sql, db.catalog());
    PPP_CHECK(spec.ok()) << spec.status().ToString();

    double measured[3];
    std::string placement;
    const optimizer::Algorithm algorithms[] = {
        optimizer::Algorithm::kPushDown, optimizer::Algorithm::kPullUp,
        optimizer::Algorithm::kMigration};
    for (int i = 0; i < 3; ++i) {
      auto m = workload::RunWithAlgorithm(&db, *spec, algorithms[i], params, {});
      PPP_CHECK(m.ok()) << m.status().ToString();
      measured[i] = m->charged_time;
      if (i == 2) {
        optimizer::Optimizer opt(&db.catalog(), params);
        auto result = opt.Optimize(*spec, algorithms[i]);
        PPP_CHECK(result.ok());
        const int depth = FilterDepth(*result->plan);
        placement = depth == 0 ? "above the join"
                               : (depth > 0 ? "below the join" : "absorbed");
      }
    }
    std::printf("%10.4g %12.6g %12.6g %12.6g %18s\n", cost, measured[0],
                measured[1], measured[2], placement.c_str());
  }
  std::printf(
      "\nReading: below ~0.05 I/Os per call the modeled join is the\n"
      "pricier per-tuple operation, so Migration keeps the selection on\n"
      "the scan; above it the selection dominates and migrates over the\n"
      "join, after which PushDown's bill scales with |t10| while the\n"
      "pulled-up plans scale with the join's survivors. The crossover\n"
      "point depends on data sizes, selectivities and join methods —\n"
      "which is the paper's argument for rank-based placement instead of\n"
      "an always-push or always-pull heuristic (§4.2).\n");
  return 0;
}
