// Domain example from the paper's introduction and §5.1: an employee
// database with image-analysis predicates. `beard_color(picture)` costs
// hundreds of random I/Os per call, so the classic "selections first"
// heuristic is exactly wrong — the department join should run first.
//
// Demonstrates: building your own schema, registering UDFs with cost and
// selectivity metadata, SQL with mixed cheap/expensive predicates, EXPLAIN
// output, predicate-cache statistics.

#include <cstdio>

#include "common/random.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "workload/database.h"
#include "workload/measurement.h"

using namespace ppp;

namespace {

common::Status Setup(workload::Database* db) {
  catalog::Catalog& cat = db->catalog();

  // emp(id, dept, picture_handle, salary): 8000 employees in 40 depts.
  PPP_ASSIGN_OR_RETURN(
      catalog::Table * emp,
      cat.CreateTable("emp", {{"id", types::TypeId::kInt64},
                              {"dept", types::TypeId::kInt64},
                              {"picture", types::TypeId::kInt64},
                              {"salary", types::TypeId::kInt64}}));
  // dept(id, budget): 40 departments, 4 with a big budget.
  PPP_ASSIGN_OR_RETURN(
      catalog::Table * dept,
      cat.CreateTable("dept", {{"id", types::TypeId::kInt64},
                               {"budget", types::TypeId::kInt64}}));

  common::Random rng(7);
  for (int64_t i = 0; i < 8000; ++i) {
    PPP_RETURN_IF_ERROR(emp->Insert(types::Tuple(
        {types::Value(i), types::Value(i % 40), types::Value(i),
         types::Value(static_cast<int64_t>(rng.NextUint64(200000)))})));
  }
  for (int64_t d = 0; d < 40; ++d) {
    PPP_RETURN_IF_ERROR(dept->Insert(types::Tuple(
        {types::Value(d), types::Value(d < 4 ? int64_t{1} : int64_t{0})})));
  }
  // No index on emp.dept: the join must consume a full employee stream,
  // so predicate placement on that stream is a real decision.
  PPP_RETURN_IF_ERROR(emp->CreateIndex("id"));
  PPP_RETURN_IF_ERROR(dept->CreateIndex("id"));
  PPP_RETURN_IF_ERROR(emp->Analyze());
  PPP_RETURN_IF_ERROR(dept->Analyze());

  // The expensive predicate: fetching and analysing the image costs ~250
  // random I/Os; about 4% of employees have a red beard.
  PPP_RETURN_IF_ERROR(cat.functions().RegisterCostlyPredicate(
      "has_red_beard", /*cost=*/250.0, /*selectivity=*/0.04));
  return common::Status::OK();
}

}  // namespace

int main() {
  workload::Database db;
  const common::Status status = Setup(&db);
  if (!status.ok()) {
    std::fprintf(stderr, "setup: %s\n", status.ToString().c_str());
    return 1;
  }

  const std::string sql =
      "SELECT * FROM emp, dept WHERE emp.dept = dept.id "
      "AND dept.budget = 1 AND has_red_beard(emp.picture)";
  std::printf("query: %s\n\n", sql.c_str());

  auto spec = parser::ParseAndBind(sql, db.catalog());
  if (!spec.ok()) {
    std::fprintf(stderr, "bind: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  for (const optimizer::Algorithm algorithm :
       {optimizer::Algorithm::kPushDown, optimizer::Algorithm::kMigration}) {
    auto m = workload::RunWithAlgorithm(&db, *spec, algorithm, {}, {});
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s ---\n%scharged relative time: %.6g "
                "(beard checks: %llu)\n\n",
                m->algorithm.c_str(), m->plan_text.c_str(), m->charged_time,
                static_cast<unsigned long long>(
                    m->invocations.count("has_red_beard")
                        ? m->invocations.at("has_red_beard")
                        : 0));
  }

  std::printf(
      "The pushdown plan analyses every employee photo; the migrated plan\n"
      "joins the 4 big-budget departments' employees first and analyses\n"
      "only those — the paper's core argument, on a business schema.\n");
  return 0;
}
