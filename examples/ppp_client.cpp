// Minimal wire-protocol client: sends each argument as one request frame
// and prints the response frames — ROW payloads decoded to tab-separated
// values, everything else verbatim.
//
//   ./ppp_client <port> "QUERY SELECT count(*) FROM t3;" \
//                "PREPARE q AS SELECT a FROM t3 WHERE a < $1;" \
//                "EXECUTE q(100);" PING CLOSE
//
// Statement responses end at the OK/ERR frame; a trailing CLOSE is sent
// automatically when the arguments don't include one.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/wire.h"
#include "types/tuple.h"
#include "types/value.h"

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads frames until the statement terminator (OK/ERR/METRICS); returns
/// false on connection loss.
bool ReadResponse(int fd, ppp::net::FrameParser* parser) {
  std::vector<std::string> payloads;
  char buf[64 * 1024];
  for (;;) {
    for (const std::string& payload : payloads) {
      if (payload.rfind("ROW ", 0) == 0) {
        auto tuple = ppp::net::DecodeRowPayload(payload);
        if (!tuple.ok()) {
          std::printf("bad ROW frame: %s\n",
                      tuple.status().message().c_str());
          continue;
        }
        std::string line;
        for (size_t i = 0; i < tuple->values().size(); ++i) {
          if (i > 0) line += "\t";
          line += tuple->values()[i].ToString();
        }
        std::printf("%s\n", line.c_str());
      } else {
        std::printf("%s\n", payload.c_str());
        if (payload.rfind("OK", 0) == 0 || payload.rfind("ERR", 0) == 0 ||
            payload.rfind("METRICS", 0) == 0) {
          return true;
        }
      }
    }
    payloads.clear();
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    if (!parser->Feed(buf, static_cast<size_t>(n), &payloads).ok()) {
      std::printf("protocol error from server\n");
      return false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <port> <frame>...\n", argv[0]);
    return 2;
  }
  const int port = std::atoi(argv[1]);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    return 1;
  }
  ppp::net::FrameParser parser;
  bool sent_close = false;
  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string payload = argv[i];
    if (!SendAll(fd, ppp::net::EncodeFrame(payload))) {
      std::fprintf(stderr, "send failed\n");
      rc = 1;
      break;
    }
    if (payload == "CLOSE" || payload.rfind("CLOSE ", 0) == 0) {
      sent_close = true;
    }
    if (payload == "SHUTDOWN") sent_close = true;  // Server closes later.
    if (!ReadResponse(fd, &parser)) {
      if (!sent_close) {
        std::fprintf(stderr, "connection lost\n");
        rc = 1;
      }
      break;
    }
    if (sent_close) break;
  }
  if (!sent_close && rc == 0) {
    SendAll(fd, ppp::net::EncodeFrame("CLOSE"));
    ReadResponse(fd, &parser);
  }
  ::close(fd);
  return rc;
}
