// A minimal interactive shell over the engine: type SELECT statements
// against the benchmark database, get the optimized plan (EXPLAIN) and the
// first rows, with the measured I/O + invocation bill. Reads from stdin;
// pipe a script in, or run interactively. Statements:
//   SELECT ...                 run the query
//   EXPLAIN SELECT ...         show the optimized plan, don't run
//   EXPLAIN ANALYZE SELECT ... run and show the plan with per-operator
//                              actual rows, timings, I/O, and cache stats
//   ANALYZE [t1 [, t2]...]     collect sampled statistics (histograms,
//                              MCVs, NDV sketches); no list = all tables
// Meta-commands:
//   \tables            list tables
//   \analyze [t...]    same as the ANALYZE statement
//   \functions         list registered functions
//   \algorithm NAME    switch placement algorithm (pushdown, pullup,
//                      pullrank, migration, ldl, exhaustive)
//   \explain on|off    toggle plan printing
//   \trace on|off      dump the optimizer's decision trace after each query
//   \metrics [reset]   print (or reset) the global metrics registry
//   \spans on|off|clear|dump [FILE]
//                      lifecycle span tracing; dump writes Chrome
//                      trace-event JSON (default trace.json) for Perfetto
//   \log [N|on|off|clear]
//                      tail of the query log (default 10 rows; also
//                      SQL-queryable as ppp_query_log — see \tables);
//                      flags column: C = plan changed, R = regressed
//   \plans [clear]     plan-fingerprint history per normalized query:
//                      executions, mean/p95 wall, invocations, max q-error,
//                      CHANGED/REGRESSED flags (ppp_plan_history in SQL)
//   \audit [N]         per-operator cardinality audit of recent queries:
//                      est vs actual rows and q-error per plan node
//                      (default 20 rows; ppp_operator_audit in SQL)
//   \profile [reset]   per-function runtime profile (observed cost and
//                      distinct-value selectivity)
//   \calibrate [off]   re-run placement of the last query with observed
//                      costs/selectivities; report placement regret and
//                      keep feedback on for later queries ('off' reverts)
//   \set workers N     parallel workers for expensive predicates (1 = off)
//   \set batch N       rows per executor batch
//   \set transfer on|off
//                      Bloom-filter predicate transfer: hash joins publish
//                      a filter over the build-side join key and the
//                      probe-side scan prunes doomed tuples before any
//                      expensive predicate runs
//   \set stats on|off  use collected ANALYZE statistics in planning
//                      (provenance ladder: feedback > stats > declared)
//   \set vector on|off columnar batches + vectorized cheap-predicate
//                      kernels (selection vectors; expensive UDFs evaluate
//                      late, against survivors only). Default on.
//   \set plancache on|off
//                      serving-layer plan cache for this session: repeat
//                      SELECTs skip parse/bind/optimize until ANALYZE (or a
//                      plan-history regression) invalidates the entry
//   \session [new|N]   list sessions + plan-cache counters, open a new
//                      session, or switch to session N (each session has
//                      its own knobs; the plan cache is shared)
//   \quit

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/plan_history.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "serve/session.h"
#include "stats/collector.h"
#include "subquery/rewrite.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/schema_gen.h"

using namespace ppp;

namespace {

/// True when the first whole word of `sql` is `word` (case-insensitive).
bool FirstWordIs(const std::string& sql, const std::string& word) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[j])) || sql[j] == '_')) {
    ++j;
  }
  return common::ToLower(sql.substr(i, j - i)) == common::ToLower(word);
}

/// ANALYZE the named tables (all tables when empty) and print a summary
/// of each collected distribution.
common::Status RunAnalyze(workload::Database* db,
                          const std::vector<std::string>& tables) {
  const stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
  const std::vector<std::string> names =
      tables.empty() ? db->catalog().TableNames() : tables;
  for (const std::string& name : names) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         db->catalog().GetTable(name));
    PPP_RETURN_IF_ERROR(stats::AnalyzeTable(table, options));
    std::printf("analyzed %s: %s", name.c_str(),
                table->collected_stats()->ToString().c_str());
  }
  return common::Status::OK();
}

bool ParseAlgorithm(const std::string& name, optimizer::Algorithm* out) {
  const std::string lower = common::ToLower(name);
  if (lower == "pushdown") *out = optimizer::Algorithm::kPushDown;
  else if (lower == "pullup") *out = optimizer::Algorithm::kPullUp;
  else if (lower == "pullrank") *out = optimizer::Algorithm::kPullRank;
  else if (lower == "migration") *out = optimizer::Algorithm::kMigration;
  else if (lower == "ldl") *out = optimizer::Algorithm::kLdl;
  else if (lower == "exhaustive") *out = optimizer::Algorithm::kExhaustive;
  else return false;
  return true;
}

}  // namespace

int main() {
  workload::Database db;
  workload::BenchmarkConfig config;
  config.scale = 200;
  config.table_numbers = {1, 3, 6, 7, 9, 10};
  if (!workload::LoadBenchmarkDatabase(&db, config).ok() ||
      !workload::RegisterBenchmarkFunctions(&db).ok()) {
    std::fprintf(stderr, "failed to load benchmark database\n");
    return 1;
  }

  optimizer::Algorithm algorithm = optimizer::Algorithm::kMigration;
  bool explain = true;
  bool tracing = false;
  cost::CostParams cost_params;
  size_t batch_size = exec::ExecParams{}.batch_size;
  std::string last_body;  // Last SELECT body, parsed on demand by \calibrate.

  // The serving layer: plain SELECTs run through a session so repeats hit
  // the shared plan cache; EXPLAIN variants keep the direct path (they want
  // a fresh optimization trace, not a cached plan).
  serve::SessionManager manager(&db);
  std::map<uint64_t, std::unique_ptr<serve::Session>> sessions;
  serve::Session* session = nullptr;
  {
    auto s = manager.CreateSession();
    session = s.get();
    sessions[s->id()] = std::move(s);
  }

  std::printf("ppp shell — benchmark database at scale %lld. Try:\n",
              static_cast<long long>(config.scale));
  std::printf("  SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND "
              "costly100(t10.ua);\n");
  std::printf("  SELECT t3.a FROM t3 WHERE t3.u10 IN (SELECT u10 FROM t6 "
              "WHERE t6.a10 = t3.a10);\n\\quit to exit.\n");

  std::string line;
  std::string statement;
  while (true) {
    // The prompt names the active session so multi-session exploration
    // (\session new / \session N) always shows where a query will run.
    if (statement.empty()) {
      std::printf("ppp[s%llu]> ",
                  static_cast<unsigned long long>(session->id()));
    } else {
      std::printf("...> ");
    }
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (statement.empty() && !line.empty() && line[0] == '\\') {
      std::istringstream cmd(line.substr(1));
      std::string word;
      cmd >> word;
      if (word == "quit" || word == "q") break;
      if (word == "tables") {
        for (const std::string& name : db.catalog().TableNames()) {
          auto table = db.catalog().GetTable(name);
          std::printf("  %-6s %8lld tuples, %lld pages\n", name.c_str(),
                      static_cast<long long>((*table)->NumTuples()),
                      static_cast<long long>((*table)->NumPages()));
        }
        for (const std::string& name : db.catalog().SystemTableNames()) {
          auto table = db.catalog().GetTable(name);
          std::printf("  %-18s %8lld rows (system, read-only)\n",
                      name.c_str(),
                      static_cast<long long>((*table)->NumTuples()));
        }
        continue;
      }
      if (word == "analyze") {
        std::vector<std::string> tables;
        std::string t;
        while (cmd >> t) tables.push_back(t);
        const common::Status status = RunAnalyze(&db, tables);
        if (!status.ok()) {
          std::printf("error: %s\n", status.ToString().c_str());
        }
        continue;
      }
      if (word == "functions") {
        for (const std::string& name : db.catalog().functions().Names()) {
          const catalog::FunctionDef* def =
              *db.catalog().functions().Lookup(name);
          std::printf("  %-14s cost=%-8.4g selectivity=%.3g\n",
                      name.c_str(), def->cost_per_call, def->selectivity);
        }
        continue;
      }
      if (word == "algorithm") {
        std::string name;
        cmd >> name;
        if (!ParseAlgorithm(name, &algorithm)) {
          std::printf("unknown algorithm '%s'\n", name.c_str());
        } else {
          std::printf("using %s\n", optimizer::AlgorithmName(algorithm));
        }
        continue;
      }
      if (word == "explain") {
        std::string mode;
        cmd >> mode;
        explain = (mode != "off");
        std::printf("explain %s\n", explain ? "on" : "off");
        continue;
      }
      if (word == "trace") {
        std::string mode;
        cmd >> mode;
        tracing = (mode != "off");
        std::printf("trace %s\n", tracing ? "on" : "off");
        continue;
      }
      if (word == "metrics") {
        std::string mode;
        cmd >> mode;
        if (mode == "reset") {
          obs::MetricsRegistry::Global().ResetAll();
          std::printf("metrics reset\n");
        } else {
          std::printf("%s",
                      obs::MetricsRegistry::Global().Snapshot().ToText()
                          .c_str());
        }
        continue;
      }
      if (word == "spans") {
        std::string mode;
        cmd >> mode;
        obs::SpanTracer& tracer = obs::SpanTracer::Global();
        if (mode == "off") {
          tracer.set_enabled(false);
          std::printf("spans off (%zu buffered)\n", tracer.size());
        } else if (mode == "clear") {
          tracer.Clear();
          std::printf("spans cleared\n");
        } else if (mode == "dump") {
          std::string file;
          cmd >> file;
          if (file.empty()) file = "trace.json";
          const common::Status status = obs::WriteChromeTrace(
              file, tracer.Snapshot(), tracer.dropped());
          if (!status.ok()) {
            std::printf("error: %s\n", status.ToString().c_str());
          } else {
            std::printf("wrote %zu span(s) to %s (%llu dropped)\n",
                        tracer.size(), file.c_str(),
                        static_cast<unsigned long long>(tracer.dropped()));
          }
        } else {
          tracer.set_enabled(true);
          std::printf("spans on\n");
        }
        continue;
      }
      if (word == "log") {
        std::string mode;
        cmd >> mode;
        obs::QueryLog& log = obs::QueryLog::Global();
        if (mode == "on") {
          log.set_enabled(true);
          std::printf("query log on\n");
        } else if (mode == "off") {
          log.set_enabled(false);
          std::printf("query log off (%zu retained)\n", log.size());
        } else if (mode == "clear") {
          log.Clear();
          std::printf("query log cleared\n");
        } else {
          size_t n = 10;
          if (!mode.empty()) {
            const long long parsed = std::atoll(mode.c_str());
            if (parsed <= 0) {
              std::printf("usage: \\log [N|on|off|clear]\n");
              continue;
            }
            n = static_cast<size_t>(parsed);
          }
          std::printf("  %5s %-10s %10s %9s %8s %6s %5s %5s %-8s %-5s\n",
                      "id", "algorithm", "wall_ms", "rows_out", "udf",
                      "cache", "prune", "drift", "tier", "flags");
          for (const obs::QueryLogRecord& r : log.Tail(n)) {
            std::string flags;
            if (r.plan_changed) flags += 'C';
            if (r.plan_regressed) flags += 'R';
            std::printf("  %5llu %-10s %10.3f %9llu %8llu %6llu %5llu "
                        "%5llu %-8s %-5s\n",
                        static_cast<unsigned long long>(r.query_id),
                        r.algorithm.c_str(), r.wall_seconds * 1e3,
                        static_cast<unsigned long long>(r.rows_out),
                        static_cast<unsigned long long>(r.udf_invocations),
                        static_cast<unsigned long long>(r.cache_hits),
                        static_cast<unsigned long long>(r.transfer_pruned),
                        static_cast<unsigned long long>(r.drift_flags),
                        obs::StatsTierName(r.stats_tier), flags.c_str());
          }
          std::printf("  %llu logged, %llu evicted; \"SELECT ... FROM "
                      "ppp_query_log\" for the full view\n",
                      static_cast<unsigned long long>(log.total()),
                      static_cast<unsigned long long>(log.evicted()));
        }
        continue;
      }
      if (word == "plans") {
        std::string mode;
        cmd >> mode;
        obs::PlanHistory& history = obs::PlanHistory::Global();
        if (mode == "clear") {
          history.Clear();
          std::printf("plan history cleared\n");
          continue;
        }
        std::printf("  %-16s %-16s %5s %9s %9s %9s %7s %s\n", "text_hash",
                    "fingerprint", "execs", "mean_ms", "p95_ms", "udf",
                    "max_q", "flags");
        for (const obs::PlanHistoryEntry& e : history.Snapshot()) {
          std::string flags;
          if (e.plan_changed) flags += "CHANGED ";
          if (e.regressed) flags += "REGRESSED";
          std::printf("  %016llx %016llx %5llu %9.3f %9.3f %9llu %7.3g %s\n",
                      static_cast<unsigned long long>(e.text_hash),
                      static_cast<unsigned long long>(e.plan_fingerprint),
                      static_cast<unsigned long long>(e.executions),
                      e.wall_mean * 1e3, e.wall_p95 * 1e3,
                      static_cast<unsigned long long>(e.total_invocations),
                      e.max_qerror, flags.c_str());
        }
        std::printf("  %zu plan(s); %llu change(s), %llu regression(s); "
                    "\"SELECT ... FROM ppp_plan_history\" for the full "
                    "view\n",
                    history.size(),
                    static_cast<unsigned long long>(history.changed_total()),
                    static_cast<unsigned long long>(
                        history.regressed_total()));
        continue;
      }
      if (word == "audit") {
        std::string mode;
        cmd >> mode;
        size_t n = 20;
        if (!mode.empty()) {
          const long long parsed = std::atoll(mode.c_str());
          if (parsed <= 0) {
            std::printf("usage: \\audit [N]\n");
            continue;
          }
          n = static_cast<size_t>(parsed);
        }
        obs::PlanAudit& audit = obs::PlanAudit::Global();
        std::printf("  %5s %-8s %-32s %10s %10s %7s %9s %8s\n", "id",
                    "path", "op", "est", "act", "q", "ms", "udf");
        for (const obs::OperatorAuditRecord& r : audit.Tail(n)) {
          std::printf("  %5llu %-8s %-32.32s %10.4g %10llu %7.3g %9.3f "
                      "%8llu\n",
                      static_cast<unsigned long long>(r.query_id),
                      r.path.c_str(), r.op.c_str(), r.est_rows,
                      static_cast<unsigned long long>(r.actual_rows),
                      r.qerror, r.inclusive_seconds * 1e3,
                      static_cast<unsigned long long>(r.udf_invocations));
        }
        std::printf("  %llu audited, %llu evicted; \"SELECT ... FROM "
                    "ppp_operator_audit\" for the full view\n",
                    static_cast<unsigned long long>(audit.total()),
                    static_cast<unsigned long long>(audit.evicted()));
        continue;
      }
      if (word == "profile") {
        std::string mode;
        cmd >> mode;
        if (mode == "reset") {
          obs::PredicateProfiler::Global().Reset();
          std::printf("profile reset\n");
        } else {
          std::printf("%s",
                      obs::PredicateProfiler::Global().ReportText().c_str());
        }
        continue;
      }
      if (word == "calibrate") {
        std::string mode;
        cmd >> mode;
        if (mode == "off") {
          cost_params.use_feedback = false;
          obs::PredicateFeedbackStore::Global().Clear();
          std::printf("feedback off (store cleared)\n");
          continue;
        }
        if (last_body.empty()) {
          std::printf("no query yet: run one first, then \\calibrate\n");
          continue;
        }
        auto last_spec = subquery::ParseBindRewrite(last_body, &db.catalog());
        if (!last_spec.ok()) {
          std::printf("error: %s\n", last_spec.status().ToString().c_str());
          continue;
        }
        auto report = workload::Calibrate(&db.catalog(), *last_spec,
                                          algorithm, cost_params);
        if (!report.ok()) {
          std::printf("error: %s\n", report.status().ToString().c_str());
          continue;
        }
        std::printf("%s\n", report->Summary().c_str());
        if (report->placement_changed) {
          std::printf("plan before:\n%splan after:\n%s",
                      report->plan_before.c_str(),
                      report->plan_after.c_str());
        }
        cost_params.use_feedback = true;
        std::printf("feedback on: subsequent queries use observed "
                    "costs/selectivities\n");
        continue;
      }
      if (word == "session") {
        std::string arg;
        cmd >> arg;
        if (arg == "new") {
          auto s = manager.CreateSession();
          session = s.get();
          const uint64_t id = s->id();
          sessions[id] = std::move(s);
          std::printf("session %llu (now current)\n",
                      static_cast<unsigned long long>(id));
        } else if (!arg.empty()) {
          const long long id = std::atoll(arg.c_str());
          auto it = sessions.find(static_cast<uint64_t>(id));
          if (id <= 0 || it == sessions.end()) {
            std::printf("no open session %s\n", arg.c_str());
          } else {
            session = it->second.get();
            std::printf("session %lld\n", id);
          }
        } else {
          std::printf("sessions (current: s%llu)\n",
                      static_cast<unsigned long long>(session->id()));
          std::printf("  %3s %-7s %-9s %7s %5s %6s %9s\n", "id", "state",
                      "plancache", "queries", "hits", "misses", "rows");
          for (const serve::SessionRow& r : manager.SessionRows()) {
            std::printf("  %3llu%c %-6s %-9s %7llu %5llu %6llu %9llu\n",
                        static_cast<unsigned long long>(r.session_id),
                        session != nullptr && session->id() == r.session_id
                            ? '*'
                            : ' ',
                        r.active ? "open" : "closed",
                        r.plan_cache ? "on" : "off",
                        static_cast<unsigned long long>(r.queries),
                        static_cast<unsigned long long>(r.plan_cache_hits),
                        static_cast<unsigned long long>(r.plan_cache_misses),
                        static_cast<unsigned long long>(r.rows_returned));
          }
          const serve::PlanCache& cache = manager.plan_cache();
          std::printf("  plan cache: %zu entries, %zu bytes; hits=%llu "
                      "misses=%llu invalidations=%llu evictions=%llu\n",
                      cache.entries(), cache.approx_bytes(),
                      static_cast<unsigned long long>(cache.hits()),
                      static_cast<unsigned long long>(cache.misses()),
                      static_cast<unsigned long long>(cache.invalidations()),
                      static_cast<unsigned long long>(cache.evictions()));
        }
        continue;
      }
      if (word == "set") {
        std::string knob;
        std::string value_word;
        cmd >> knob >> value_word;
        const long long value = std::atoll(value_word.c_str());
        if (knob == "transfer" &&
            (value_word == "on" || value_word == "off")) {
          // Both the cost model (plan choice) and the executor follow:
          // ExecParamsFor copies the flag into ExecParams.
          cost_params.predicate_transfer = (value_word == "on");
          std::printf("transfer %s\n", value_word.c_str());
        } else if (knob == "stats" &&
                   (value_word == "on" || value_word == "off")) {
          cost_params.use_collected_stats = (value_word == "on");
          std::printf("stats %s\n", value_word.c_str());
        } else if (knob == "workers" && value >= 1) {
          cost_params.parallel_workers = static_cast<double>(value);
          std::printf("workers %lld\n", value);
        } else if (knob == "batch" && value >= 1) {
          batch_size = static_cast<size_t>(value);
          std::printf("batch %lld\n", value);
        } else if (knob == "vector" &&
                   (value_word == "on" || value_word == "off")) {
          // Columnar batches + vectorized cheap-predicate kernels; the
          // executor follows via ExecParamsFor, the cost model scales its
          // (optional) cheap per-row charge.
          cost_params.vectorized = (value_word == "on");
          std::printf("vector %s\n", value_word.c_str());
        } else if (knob == "plancache" &&
                   (value_word == "on" || value_word == "off")) {
          session->set_plan_cache_enabled(value_word == "on");
          if (value_word == "on" && !manager.plan_cache_enabled()) {
            std::printf("plancache on (but disabled engine-wide by "
                        "PPP_PLAN_CACHE=0)\n");
          } else {
            std::printf("plancache %s\n", value_word.c_str());
          }
        } else {
          std::printf("usage: \\set workers N | \\set batch N  (N >= 1) | "
                      "\\set transfer on|off | \\set stats on|off | "
                      "\\set vector on|off | \\set plancache on|off\n");
        }
        continue;
      }
      std::printf("unknown command \\%s\n", word.c_str());
      continue;
    }

    statement += line;
    if (statement.find(';') == std::string::npos) {
      statement += ' ';
      continue;  // Accumulate until ';'.
    }
    const std::string sql = statement;
    statement.clear();

    // ANALYZE statements have their own tiny grammar; everything else is a
    // SELECT pipeline.
    if (FirstWordIs(sql, "ANALYZE")) {
      auto stmt = parser::ParseStatement(sql);
      if (!stmt.ok()) {
        std::printf("error: %s\n", stmt.status().ToString().c_str());
        continue;
      }
      const common::Status status = RunAnalyze(&db, stmt->analyze_tables);
      if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
      continue;
    }

    // PREPARE/EXECUTE go straight through the session, which owns the
    // statement-name registry and the family-keyed plan acquisition.
    if (FirstWordIs(sql, "PREPARE") || FirstWordIs(sql, "EXECUTE")) {
      session->options().algorithm = algorithm;
      session->options().cost_params = cost_params;
      auto r = session->Execute(sql);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      if (!r->prepared_name.empty()) {
        std::printf("prepared %s (family %016llx)\n",
                    r->prepared_name.c_str(),
                    static_cast<unsigned long long>(r->family_hash));
        continue;
      }
      std::printf("%llu rows; plan cache %s%s; optimize %.3f ms, execute "
                  "%.3f ms\n",
                  static_cast<unsigned long long>(r->rows.size()),
                  r->plan_cache_hit ? "HIT" : "miss",
                  r->generic_plan ? " (generic)" : "",
                  r->optimize_seconds * 1e3, r->execute_seconds * 1e3);
      continue;
    }

    // Peel off a leading EXPLAIN [ANALYZE] lexically so the remaining
    // statement still goes through the full parse/bind/rewrite pipeline.
    std::string body;
    const parser::StatementKind kind = parser::StripExplain(sql, &body);
    const bool execute = kind != parser::StatementKind::kExplain;
    const bool collect_explain = kind != parser::StatementKind::kSelect;

    // Plain SELECTs run through the serving session: repeats of the same
    // statement (same knobs, same statistics) skip parse/bind/optimize via
    // the shared plan cache. EXPLAIN variants take the direct path below —
    // they exist to show a fresh optimization, not a cached one.
    if (kind == parser::StatementKind::kSelect) {
      const bool cross_kill =
          session->options().exec_params.transfer_cross_query_kill;
      session->options().algorithm = algorithm;
      session->options().cost_params = cost_params;
      exec::ExecParams session_params = workload::ExecParamsFor(cost_params);
      session_params.batch_size = batch_size;
      session_params.transfer_cross_query_kill = cross_kill;
      session->options().exec_params = session_params;
      auto r = session->Execute(body);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      last_body = body;
      if (explain && r->plan != nullptr) {
        std::printf("%s", r->plan->ToString().c_str());
      }
      std::printf("%llu rows; plan cache %s; optimize %.3f ms, execute "
                  "%.3f ms\n",
                  static_cast<unsigned long long>(r->rows.size()),
                  r->plan_cache_hit ? "HIT" : "miss",
                  r->optimize_seconds * 1e3, r->execute_seconds * 1e3);
      continue;
    }

    auto spec = subquery::ParseBindRewrite(body, &db.catalog());
    if (!spec.ok()) {
      std::printf("error: %s\n", spec.status().ToString().c_str());
      continue;
    }
    last_body = body;
    obs::OptTrace trace;
    exec::ExecParams exec_params = workload::ExecParamsFor(cost_params);
    exec_params.batch_size = batch_size;
    auto m = workload::RunWithAlgorithm(&db, *spec, algorithm, cost_params,
                                        exec_params, execute, collect_explain,
                                        tracing ? &trace : nullptr);
    if (!m.ok()) {
      std::printf("error: %s\n", m.status().ToString().c_str());
      continue;
    }
    if (collect_explain) {
      std::printf("%s", m->explain_text.c_str());
    } else if (explain) {
      std::printf("%s", m->plan_text.c_str());
    }
    if (tracing && !trace.empty()) {
      std::printf("optimizer trace:\n%s", trace.ToText().c_str());
      std::printf("dp stats: %s\n", m->dp_stats.ToString().c_str());
    }
    if (execute) {
      std::printf("%llu rows; charged time %.6g (io %.6g + udf %.6g)\n",
                  static_cast<unsigned long long>(m->output_rows),
                  m->charged_time, m->charged_io, m->charged_udf);
    }
  }
  std::printf("\nbye\n");
  return 0;
}
